"""A simulated flat address space -- the storage substrate behind the
extendible-array experiments.

The paper's compactness story is about *addresses*: a storage mapping is
good when the arrays you actually hold occupy a small prefix of memory.
Real memory is not available to a reproduction (nor needed -- the metric is
arithmetic), so this module provides an instrumented dictionary-backed
address space that records exactly the quantities Section 3 talks about:

* the **high-water mark** -- the largest address ever written (the realized
  spread);
* the **live count** -- currently occupied addresses;
* **write/read/move traffic** -- the work counters that separate the
  PF-backed extendible array (zero moves on reshape) from the naive
  remapping baseline (Omega(n^2) moves for O(n) reshapes).

Addresses are 1-indexed positive integers, matching the PFs.  An optional
``capacity`` turns the space into a bounded memory that raises
:class:`~repro.errors.CapacityError` -- useful for failure-injection tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import CapacityError, DomainError

__all__ = ["AddressSpace", "TrafficCounters"]


@dataclass(slots=True)
class TrafficCounters:
    """Cumulative operation counts for an :class:`AddressSpace`."""

    reads: int = 0
    writes: int = 0
    erases: int = 0
    moves: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "erases": self.erases,
            "moves": self.moves,
        }


class AddressSpace:
    """An instrumented, sparse, 1-indexed address space.

    >>> mem = AddressSpace()
    >>> mem.write(7, "hello")
    >>> mem.read(7)
    'hello'
    >>> mem.high_water_mark, mem.live_count
    (7, 1)
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and (
            isinstance(capacity, bool) or not isinstance(capacity, int) or capacity <= 0
        ):
            raise DomainError(f"capacity must be a positive int or None, got {capacity!r}")
        self._cells: dict[int, Any] = {}
        self._capacity = capacity
        self._high_water = 0
        self.traffic = TrafficCounters()

    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int | None:
        return self._capacity

    @property
    def high_water_mark(self) -> int:
        """Largest address ever written -- the realized spread of whatever
        storage mapping is driving this space."""
        return self._high_water

    @property
    def live_count(self) -> int:
        """Number of currently occupied addresses."""
        return len(self._cells)

    @property
    def utilization(self) -> float:
        """``live_count / high_water_mark`` (1.0 for a perfectly compact
        layout; 0.0 for an empty space)."""
        if self._high_water == 0:
            return 0.0
        return len(self._cells) / self._high_water

    # ------------------------------------------------------------------

    def _check_address(self, address: int) -> int:
        if isinstance(address, bool) or not isinstance(address, int):
            raise DomainError(f"address must be an int, got {type(address).__name__}")
        if address <= 0:
            raise DomainError(f"address must be positive, got {address}")
        if self._capacity is not None and address > self._capacity:
            raise CapacityError(
                f"address {address} exceeds capacity {self._capacity}"
            )
        return address

    def write(self, address: int, value: Any) -> None:
        """Store *value* at *address* (overwrites silently, like memory)."""
        address = self._check_address(address)
        self._cells[address] = value
        self.traffic.writes += 1
        if address > self._high_water:
            self._high_water = address

    def read(self, address: int) -> Any:
        """Value at *address*; raises ``KeyError`` if unoccupied."""
        address = self._check_address(address)
        self.traffic.reads += 1
        return self._cells[address]

    def read_or(self, address: int, default: Any = None) -> Any:
        """Value at *address*, or *default* if unoccupied."""
        address = self._check_address(address)
        self.traffic.reads += 1
        return self._cells.get(address, default)

    def erase(self, address: int) -> None:
        """Free *address* (no error if already free)."""
        address = self._check_address(address)
        self._cells.pop(address, None)
        self.traffic.erases += 1

    def move(self, src: int, dst: int) -> None:
        """Move the value at *src* to *dst* -- the unit of remapping work
        counted against the naive baseline."""
        src = self._check_address(src)
        dst = self._check_address(dst)
        if src == dst:
            return
        if src not in self._cells:
            raise DomainError(f"move from unoccupied address {src}")
        self._cells[dst] = self._cells.pop(src)
        self.traffic.moves += 1
        if dst > self._high_water:
            self._high_water = dst

    def occupied(self, address: int) -> bool:
        return self._check_address(address) in self._cells

    def occupied_addresses(self) -> Iterator[int]:
        """Currently occupied addresses, ascending."""
        return iter(sorted(self._cells))

    def clear(self) -> None:
        """Free everything but keep the counters and high-water mark (they
        are history, not state)."""
        self._cells.clear()

    def __len__(self) -> int:
        return len(self._cells)

    def __repr__(self) -> str:
        return (
            f"<AddressSpace live={self.live_count} hwm={self._high_water} "
            f"traffic={self.traffic.snapshot()}>"
        )
