"""Exception hierarchy for :mod:`repro`.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still distinguishing the common failure modes:

* :class:`DomainError` -- an argument fell outside a function's mathematical
  domain (the paper works over ``N = {1, 2, ...}``, so zero and negative
  coordinates are rejected everywhere).
* :class:`NotInImageError` -- an integer was handed to an inverse mapping
  (``unpair``) but is not in the image of the forward mapping.  This can only
  happen for *injective* storage mappings such as the dovetail combinator;
  true pairing functions are surjective and never raise it.
* :class:`ConfigurationError` -- a component was constructed with
  inconsistent or unusable parameters (e.g. a dovetail of zero mappings).
* :class:`CapacityError` -- a bounded substrate (simulated address space,
  hash store) was asked to exceed its configured capacity.
* :class:`AllocationError` -- the web-computing server could not satisfy an
  allocation request (unknown volunteer, banned volunteer, ...).
* :class:`ShardDownError` -- the request routed to a crashed engine shard.
  Unlike a plain :class:`AllocationError` this failure is *transient*:
  the caller should retry (with backoff) after the shard is restored.
* :class:`RecoveryError` -- crash recovery could not reconstruct a shard's
  state exactly (checkpoint missing, replay divergence, double issue).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DomainError",
    "NotInImageError",
    "ConfigurationError",
    "CapacityError",
    "AllocationError",
    "ShardDownError",
    "RecoveryError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class DomainError(ReproError, ValueError):
    """An argument fell outside the mathematical domain of an operation.

    The paper's pairing functions are defined on the *positive* integers;
    passing ``x <= 0`` or ``y <= 0`` (or a non-integer) raises this.
    """


class NotInImageError(ReproError, ValueError):
    """An integer is not in the image of an injective storage mapping.

    Raised by ``unpair`` on mappings that are injective but not surjective
    (notably :class:`repro.core.dovetail.DovetailMapping`).
    """


class ConfigurationError(ReproError, ValueError):
    """A component was constructed with invalid or inconsistent parameters."""


class CapacityError(ReproError, RuntimeError):
    """A bounded substrate was asked to exceed its configured capacity."""


class AllocationError(ReproError, RuntimeError):
    """The web-computing server could not satisfy an allocation request."""


class ShardDownError(AllocationError):
    """The request routed to a crashed engine shard.

    Transient by contract: the operation is expected to succeed once the
    shard is restored, so callers should queue and retry with backoff
    rather than treat this as a permanent allocation failure.
    """


class RecoveryError(ReproError, RuntimeError):
    """Crash recovery could not reconstruct a shard's state exactly."""
