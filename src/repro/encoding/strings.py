"""A bijective codec between strings over a finite alphabet and ``N``.

Uses *bijective base-k numeration*: with alphabet symbols valued
``1..k``, the string ``c_1 c_2 ... c_n`` maps to

    ``sum_i value(c_i) * k**(n - i)``

which is a bijection between all finite strings (including the empty
string, which maps to 0) and the nonnegative integers; we shift by one so
codes live in ``N`` like everything else in this library.

Composing with :class:`~repro.encoding.tuples.TupleCodec` encodes
*sequences of strings* -- the full "worlds of strings, integers, and
tuples of integers" of Section 1.2 -- as single integers.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.base import validate_address
from repro.encoding.tuples import TupleCodec
from repro.errors import ConfigurationError, DomainError

__all__ = ["StringCodec"]

_DEFAULT_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


class StringCodec:
    """Bijective string <-> N codec over a fixed alphabet.

    >>> codec = StringCodec("ab")
    >>> [codec.decode(n) for n in range(1, 8)]
    ['', 'a', 'b', 'aa', 'ab', 'ba', 'bb']
    >>> codec.encode("baa")
    12
    >>> codec.decode(12)
    'baa'
    """

    def __init__(self, alphabet: str | Sequence[str] = _DEFAULT_ALPHABET) -> None:
        symbols = list(alphabet)
        if not symbols:
            raise ConfigurationError("alphabet must be non-empty")
        if any(not isinstance(s, str) or len(s) != 1 for s in symbols):
            raise ConfigurationError("alphabet entries must be single characters")
        if len(set(symbols)) != len(symbols):
            raise ConfigurationError("alphabet must not repeat characters")
        self._symbols = symbols
        self._value = {c: i + 1 for i, c in enumerate(symbols)}

    @property
    def alphabet(self) -> str:
        return "".join(self._symbols)

    @property
    def radix(self) -> int:
        return len(self._symbols)

    # ------------------------------------------------------------------

    def encode(self, text: str) -> int:
        """The code of *text* in ``N`` (empty string -> 1)."""
        if not isinstance(text, str):
            raise DomainError(f"text must be a str, got {type(text).__name__}")
        k = self.radix
        total = 0
        for ch in text:
            value = self._value.get(ch)
            if value is None:
                raise DomainError(f"character {ch!r} not in alphabet {self.alphabet!r}")
            total = total * k + value
        return total + 1

    def decode(self, code: int) -> str:
        """The unique string whose code is *code* (total on ``N``)."""
        code = validate_address(code)
        n = code - 1
        k = self.radix
        chars: list[str] = []
        while n > 0:
            n, digit = divmod(n - 1, k)
            chars.append(self._symbols[digit])
        chars.reverse()
        return "".join(chars)

    # ------------------------------------------------------------------

    def encode_sequence(self, texts: Sequence[str], tuples: TupleCodec | None = None) -> int:
        """Encode a sequence of strings as one integer by composing with a
        tuple codec.

        >>> codec = StringCodec("ab")
        >>> code = codec.encode_sequence(["ab", "", "ba"])
        >>> codec.decode_sequence(code)
        ('ab', '', 'ba')
        """
        tc = tuples if tuples is not None else TupleCodec()
        return tc.encode([self.encode(t) for t in texts])

    def decode_sequence(self, code: int, tuples: TupleCodec | None = None) -> tuple[str, ...]:
        """Inverse of :meth:`encode_sequence`."""
        tc = tuples if tuples is not None else TupleCodec()
        return tuple(self.decode(c) for c in tc.decode(code))

    def __repr__(self) -> str:
        return f"<StringCodec alphabet={self.alphabet!r}>"
