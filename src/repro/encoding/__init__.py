"""Godel/Turing-style encodings (Section 1.2).

"It took revolutionary thinkers such as Godel and Turing to recognize that
the correspondences embodied by PFs can be viewed as encodings, or
translations, of ordered pairs (and, thence, of arbitrary finite tuples or
strings) as integers."

This subpackage makes that remark executable:

* :mod:`~repro.encoding.tuples` -- a *bijective* codec between the set of
  all finite tuples of positive integers (any length, including empty) and
  ``N``, built from any 2-D PF by iteration plus a length tag;
* :mod:`~repro.encoding.strings` -- a bijective codec between strings over
  a finite alphabet and ``N`` (bijective base-k numeration), composable
  with the tuple codec to encode sequences of strings as single integers.
"""

from __future__ import annotations

from repro.encoding.tuples import TupleCodec
from repro.encoding.strings import StringCodec

__all__ = ["TupleCodec", "StringCodec"]
