"""A bijective codec between all finite tuples over ``N`` and ``N``.

Construction (Section 1.2's "pairs, thence arbitrary finite tuples"):

* the empty tuple encodes to ``1``;
* a tuple ``t`` of length ``n >= 1`` encodes to ``1 + F(n, P_n(t))``,
  where ``P_n`` is the :class:`~repro.core.ndim.IteratedPairing` of arity
  ``n`` over the base PF ``F``.

Bijectivity: ``P_n`` is a bijection ``N^n <-> N`` for each ``n``, and ``F``
is a bijection ``N x N <-> N``, so ``(n, payload) -> F(n, payload)`` is a
bijection between nonempty-tuple descriptors and ``N``; shifting by one
frees the code ``1`` for the empty tuple.  Hence *every* positive integer
decodes to exactly one finite tuple -- the codec is onto, not merely
injective, which the property tests exploit (decode-then-encode over
arbitrary integers).

Beware of magnitudes: iterated pairing is exponential in tuple length for
fixed entries (each level roughly squares under a quadratic PF).  Exact
bignums keep this correct; the codec is for *structure*, not compression.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.base import PairingFunction, validate_address
from repro.core.ndim import IteratedPairing
from repro.core.squareshell import SquareShellPairing
from repro.errors import ConfigurationError, DomainError

__all__ = ["TupleCodec"]


class TupleCodec:
    """Encode/decode finite tuples of positive integers as single positive
    integers, bijectively.

    >>> codec = TupleCodec()
    >>> codec.encode(()) == 1
    True
    >>> codec.decode(codec.encode((3, 1, 4)))
    (3, 1, 4)
    """

    def __init__(self, base: PairingFunction | None = None) -> None:
        if base is None:
            base = SquareShellPairing()
        if not isinstance(base, PairingFunction):
            raise ConfigurationError(
                f"base must be a bijective PairingFunction, got {type(base).__name__}"
            )
        self._base = base
        self._iterated: dict[int, IteratedPairing] = {}

    @property
    def base(self) -> PairingFunction:
        return self._base

    def _arity(self, n: int) -> IteratedPairing:
        cached = self._iterated.get(n)
        if cached is None:
            cached = IteratedPairing(n, self._base)
            self._iterated[n] = cached
        return cached

    # ------------------------------------------------------------------

    def encode(self, values: Sequence[int]) -> int:
        """The integer code of *values* (a tuple/list of positive ints)."""
        items = tuple(values)
        for v in items:
            if isinstance(v, bool) or not isinstance(v, int) or v <= 0:
                raise DomainError(f"tuple entries must be positive ints, got {v!r}")
        if not items:
            return 1
        n = len(items)
        payload = self._arity(n).pair(items)
        return 1 + self._base._pair(n, payload)

    def decode(self, code: int) -> tuple[int, ...]:
        """The unique tuple whose code is *code* (total on ``N``)."""
        code = validate_address(code)
        if code == 1:
            return ()
        n, payload = self._base._unpair(code - 1)
        return self._arity(n).unpair(payload)

    # ------------------------------------------------------------------

    def encode_nested(self, value) -> int:
        """Encode a nested structure of tuples/lists of positive ints by
        tagging each node: integers map to ``F(1, n)``, sequences to
        ``F(2, code-of-child-tuple)`` -- a full Godel numbering of finite
        trees.

        >>> codec = TupleCodec()
        >>> tree = (1, (2, 3), ((4,), 5))
        >>> codec.decode_nested(codec.encode_nested(tree)) == tree
        True
        """
        if isinstance(value, bool):
            raise DomainError("booleans are not encodable")
        if isinstance(value, int):
            if value <= 0:
                raise DomainError(f"leaf ints must be positive, got {value}")
            return self._base._pair(1, value)
        if isinstance(value, (tuple, list)):
            child_codes = tuple(self.encode_nested(v) for v in value)
            return self._base._pair(2, self.encode(child_codes))
        raise DomainError(f"cannot encode {type(value).__name__}")

    def decode_nested(self, code: int):
        """Inverse of :meth:`encode_nested` (total on ``N``: every integer
        is a valid tree code)."""
        code = validate_address(code)
        tag, body = self._base._unpair(code)
        if tag == 1 or tag > 2:
            # Tags > 2 never arise from encode_nested; decode them as
            # leaves so the mapping stays total (useful for fuzzing).
            return body if tag == 1 else code
        children = self.decode(body)
        return tuple(self.decode_nested(c) for c in children)

    def __repr__(self) -> str:
        return f"<TupleCodec base={self._base.name!r}>"
