"""Procedure PF-Constructor (Section 3.1): build a PF from any shell
partition of ``N x N``.

The paper's recipe:

* **Step 1** -- partition ``N x N`` into finite *shells* with a linear order
  on the shells (here: shells are indexed ``1, 2, 3, ...``).
* **Step 2a** -- enumerate positions shell by shell.
* **Step 2b** -- enumerate each shell "in some systematic way".

Theorem 3.1: any function so designed is a valid PF, because the
construction is exactly an enumeration of ``N x N``.

This module makes the recipe executable: a :class:`ShellPartition` supplies
the shell geometry, a :class:`ShellOrder` supplies Step 2b, and
:class:`ShellConstructedPairing` glues them into a
:class:`~repro.core.base.PairingFunction`.  The closed-form PFs in this
package (diagonal, square-shell, hyperbolic, aspect-ratio) are all special
cases; the test suite verifies each closed form against its generic
shell-constructed counterpart, and the ablation benchmark measures how the
Step 2b choice affects locality without affecting spread.

Generic costs: ``pair`` enumerates one shell (O(shell size) after the
partition locates it); ``unpair`` binary-searches the cumulative shell sizes
then indexes into the shell.  Use the closed-form classes for speed; use
this module to *design* new PFs.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod

from repro.core.base import PairingFunction
from repro.errors import ConfigurationError, DomainError
from repro.numbertheory.divisor_sums import (
    divisor_summatory,
    smallest_n_with_summatory_at_least,
)
from repro.numbertheory.divisors import divisor_pairs
from repro.numbertheory.integers import ceil_div, isqrt_exact, triangular

__all__ = [
    "ShellOrder",
    "ShellPartition",
    "DiagonalShells",
    "SquareShells",
    "HyperbolicShells",
    "AspectRatioShells",
    "ShellConstructedPairing",
]


class ShellOrder(enum.Enum):
    """Step 2b policies: the systematic in-shell enumeration order.

    ``BY_COLUMNS`` is the paper's example: increasing ``y``, and for equal
    ``y``, decreasing ``x``.  ``BY_COLUMNS_X_INCREASING`` is the variant the
    paper notes "works as well, of course".  ``BY_ROWS`` mirrors them.
    ``NATIVE`` keeps the partition's own canonical order (e.g. the
    counterclockwise walk of the square shells that reproduces ``A_{1,1}``).
    """

    BY_COLUMNS = "by-columns"
    BY_COLUMNS_X_INCREASING = "by-columns-x-increasing"
    BY_ROWS = "by-rows"
    BY_ROWS_Y_INCREASING = "by-rows-y-increasing"
    NATIVE = "native"

    def arrange(self, members: list[tuple[int, int]]) -> list[tuple[int, int]]:
        """Return *members* in this order (``NATIVE`` keeps input order)."""
        if self is ShellOrder.NATIVE:
            return list(members)
        if self is ShellOrder.BY_COLUMNS:
            return sorted(members, key=lambda p: (p[1], -p[0]))
        if self is ShellOrder.BY_COLUMNS_X_INCREASING:
            return sorted(members, key=lambda p: (p[1], p[0]))
        if self is ShellOrder.BY_ROWS:
            return sorted(members, key=lambda p: (p[0], -p[1]))
        return sorted(members, key=lambda p: (p[0], p[1]))


class ShellPartition(ABC):
    """A partition of ``N x N`` into finite, linearly ordered shells.

    Shell indices are 1-based.  Implementations must guarantee:

    * every position belongs to exactly one shell
      (``shell_index`` total, consistent with ``members``);
    * shells are finite and ``members(c)`` lists shell ``c`` exactly once,
      in the partition's canonical order;
    * ``cumulative_before(c)`` equals ``sum(size(j) for j in 1..c-1)``.
    """

    @property
    @abstractmethod
    def name(self) -> str:
        """Identifier used in the constructed PF's name."""

    @abstractmethod
    def shell_index(self, x: int, y: int) -> int:
        """The (1-based) shell containing position ``(x, y)``."""

    @abstractmethod
    def members(self, c: int) -> list[tuple[int, int]]:
        """All positions of shell ``c`` in the partition's canonical order."""

    def size(self, c: int) -> int:
        """Number of positions on shell ``c`` (default: ``len(members(c))``)."""
        return len(self.members(c))

    def cumulative_before(self, c: int) -> int:
        """Total positions on shells ``1 .. c-1``.

        The default sums sizes; partitions with closed forms override it
        (this is what keeps ``unpair`` sublinear).
        """
        if c <= 0:
            raise DomainError(f"shell index must be positive, got {c}")
        return sum(self.size(j) for j in range(1, c))

    def locate(self, z: int) -> int:
        """The shell containing enumeration rank *z* (1-based): the smallest
        ``c`` with ``cumulative_before(c) + size(c) >= z``.

        Default: exponential bracketing + bisection on
        :meth:`cumulative_before`, which must be nondecreasing.
        """
        if z <= 0:
            raise DomainError(f"rank must be positive, got {z}")
        lo, hi = 1, 1
        while self.cumulative_before(hi) + self.size(hi) < z:
            lo = hi + 1
            hi *= 2
        while lo < hi:
            mid = (lo + hi) // 2
            if self.cumulative_before(mid) + self.size(mid) >= z:
                hi = mid
            else:
                lo = mid + 1
        return lo


class DiagonalShells(ShellPartition):
    """The diagonal shells ``x + y = c + 1`` (shell ``c`` has ``c``
    positions).  Canonical order: increasing ``y`` -- the paper's ``D``."""

    @property
    def name(self) -> str:
        return "diagonal-shells"

    def shell_index(self, x: int, y: int) -> int:
        if x <= 0 or y <= 0:
            raise DomainError(f"coordinates must be positive, got ({x}, {y})")
        return x + y - 1

    def members(self, c: int) -> list[tuple[int, int]]:
        if c <= 0:
            raise DomainError(f"shell index must be positive, got {c}")
        return [(c + 1 - y, y) for y in range(1, c + 1)]

    def size(self, c: int) -> int:
        if c <= 0:
            raise DomainError(f"shell index must be positive, got {c}")
        return c

    def cumulative_before(self, c: int) -> int:
        if c <= 0:
            raise DomainError(f"shell index must be positive, got {c}")
        return triangular(c - 1)

    def locate(self, z: int) -> int:
        from repro.numbertheory.integers import triangular_root

        if z <= 0:
            raise DomainError(f"rank must be positive, got {z}")
        return triangular_root(z - 1) + 1


class SquareShells(ShellPartition):
    """The square shells ``max(x, y) = c`` (shell ``c`` has ``2c - 1``
    positions).  Canonical order: the counterclockwise walk of ``A_{1,1}``
    -- down the new row's start... precisely ``(c,1), (c,2), ..., (c,c),
    (c-1,c), ..., (1,c)``."""

    @property
    def name(self) -> str:
        return "square-shells"

    def shell_index(self, x: int, y: int) -> int:
        if x <= 0 or y <= 0:
            raise DomainError(f"coordinates must be positive, got ({x}, {y})")
        return max(x, y)

    def members(self, c: int) -> list[tuple[int, int]]:
        if c <= 0:
            raise DomainError(f"shell index must be positive, got {c}")
        horizontal = [(c, y) for y in range(1, c + 1)]
        vertical = [(x, c) for x in range(c - 1, 0, -1)]
        return horizontal + vertical

    def size(self, c: int) -> int:
        if c <= 0:
            raise DomainError(f"shell index must be positive, got {c}")
        return 2 * c - 1

    def cumulative_before(self, c: int) -> int:
        if c <= 0:
            raise DomainError(f"shell index must be positive, got {c}")
        return (c - 1) * (c - 1)

    def locate(self, z: int) -> int:
        if z <= 0:
            raise DomainError(f"rank must be positive, got {z}")
        return isqrt_exact(z - 1) + 1


class HyperbolicShells(ShellPartition):
    """The hyperbolic shells ``x * y = c`` (shell ``c`` has ``delta(c)``
    positions).  Canonical order: descending ``x`` -- the paper's ``H``."""

    @property
    def name(self) -> str:
        return "hyperbolic-shells"

    def shell_index(self, x: int, y: int) -> int:
        if x <= 0 or y <= 0:
            raise DomainError(f"coordinates must be positive, got ({x}, {y})")
        return x * y

    def members(self, c: int) -> list[tuple[int, int]]:
        if c <= 0:
            raise DomainError(f"shell index must be positive, got {c}")
        return list(divisor_pairs(c))

    def cumulative_before(self, c: int) -> int:
        if c <= 0:
            raise DomainError(f"shell index must be positive, got {c}")
        return divisor_summatory(c - 1)

    def locate(self, z: int) -> int:
        if z <= 0:
            raise DomainError(f"rank must be positive, got {z}")
        return smallest_n_with_summatory_at_least(z)


class AspectRatioShells(ShellPartition):
    """The ``<a, b>`` shells of Section 3.2.1: shell ``k`` is the ``ak x bk``
    array minus the ``a(k-1) x b(k-1)`` array.  Canonical order: the
    L-shaped walk of :class:`~repro.core.aspectratio.AspectRatioPairing`
    (right strip column-major, then bottom strip row-major)."""

    def __init__(self, a: int, b: int) -> None:
        if isinstance(a, bool) or not isinstance(a, int) or a <= 0:
            raise ConfigurationError(f"a must be a positive int, got {a!r}")
        if isinstance(b, bool) or not isinstance(b, int) or b <= 0:
            raise ConfigurationError(f"b must be a positive int, got {b!r}")
        self.a = a
        self.b = b

    @property
    def name(self) -> str:
        return f"aspect-shells-{self.a}x{self.b}"

    def shell_index(self, x: int, y: int) -> int:
        if x <= 0 or y <= 0:
            raise DomainError(f"coordinates must be positive, got ({x}, {y})")
        return max(ceil_div(x, self.a), ceil_div(y, self.b))

    def members(self, k: int) -> list[tuple[int, int]]:
        if k <= 0:
            raise DomainError(f"shell index must be positive, got {k}")
        a, b = self.a, self.b
        right = [
            (x, y)
            for y in range(b * (k - 1) + 1, b * k + 1)
            for x in range(1, a * k + 1)
        ]
        bottom = [
            (x, y)
            for x in range(a * (k - 1) + 1, a * k + 1)
            for y in range(1, b * (k - 1) + 1)
        ]
        return right + bottom

    def size(self, k: int) -> int:
        if k <= 0:
            raise DomainError(f"shell index must be positive, got {k}")
        return self.a * self.b * (2 * k - 1)

    def cumulative_before(self, k: int) -> int:
        if k <= 0:
            raise DomainError(f"shell index must be positive, got {k}")
        return self.a * self.b * (k - 1) * (k - 1)

    def locate(self, z: int) -> int:
        if z <= 0:
            raise DomainError(f"rank must be positive, got {z}")
        return isqrt_exact((z - 1) // (self.a * self.b)) + 1


class ShellConstructedPairing(PairingFunction):
    """Procedure PF-Constructor, executable: a PF assembled from a shell
    partition (Step 1) and an in-shell order (Step 2b).

    By Theorem 3.1 the result is always a valid PF; the
    ``check_*`` validators inherited from
    :class:`~repro.core.base.PairingFunction` verify this on any finite
    window, and the test suite does so for every built-in partition/order
    combination.

    >>> pf = ShellConstructedPairing(DiagonalShells(), ShellOrder.BY_COLUMNS)
    >>> pf.table(2, 3)   # identical to the paper's D (Figure 2)
    [[1, 3, 6], [2, 5, 9]]
    """

    def __init__(
        self,
        partition: ShellPartition,
        order: ShellOrder = ShellOrder.NATIVE,
    ) -> None:
        if not isinstance(partition, ShellPartition):
            raise ConfigurationError(
                f"partition must be a ShellPartition, got {type(partition).__name__}"
            )
        if not isinstance(order, ShellOrder):
            raise ConfigurationError(
                f"order must be a ShellOrder, got {type(order).__name__}"
            )
        self._partition = partition
        self._order = order

    @property
    def name(self) -> str:
        return f"shells({self._partition.name},{self._order.value})"

    @property
    def partition(self) -> ShellPartition:
        return self._partition

    @property
    def order(self) -> ShellOrder:
        return self._order

    def _ordered_members(self, c: int) -> list[tuple[int, int]]:
        return self._order.arrange(self._partition.members(c))

    def _pair(self, x: int, y: int) -> int:
        c = self._partition.shell_index(x, y)
        members = self._ordered_members(c)
        try:
            rank = members.index((x, y)) + 1
        except ValueError:  # pragma: no cover - would mean a broken partition
            raise ConfigurationError(
                f"partition {self._partition.name!r} claims shell {c} for "
                f"({x}, {y}) but does not list it"
            ) from None
        return self._partition.cumulative_before(c) + rank

    def _unpair(self, z: int) -> tuple[int, int]:
        c = self._partition.locate(z)
        rank = z - self._partition.cumulative_before(c)
        members = self._ordered_members(c)
        if not 1 <= rank <= len(members):  # pragma: no cover - broken partition
            raise ConfigurationError(
                f"partition {self._partition.name!r}: rank {rank} outside shell {c} "
                f"of size {len(members)}"
            )
        return members[rank - 1]
