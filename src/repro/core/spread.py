"""Compactness analysis: spread functions, utilization, and the optimality
bound of Section 3.2.3.

The spread function (3.1),

    ``S_A(n) = max{A(x, y) : x * y <= n}``,

is the paper's yardstick for how well a storage mapping manages memory: an
array with ``n`` cells mapped through ``A`` occupies addresses within
``[1, S_A(n)]``, so ``n / S_A(n)`` is a worst-case storage utilization.

This module computes spreads exactly (by enumeration or by each mapping's
closed form), sweeps them over geometric ranges of ``n``, compares them to
the ``Theta(n log n)`` lower bound, and packages the results in small
report dataclasses consumed by the benchmarks and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.base import StorageMapping
from repro.errors import DomainError
from repro.numbertheory.lattice import spread_lower_bound

__all__ = [
    "SpreadPoint",
    "SpreadCurve",
    "spread_curve",
    "compare_spreads",
    "utilization",
    "worst_shape",
]


@dataclass(frozen=True, slots=True)
class SpreadPoint:
    """One sample of a spread curve."""

    n: int
    spread: int
    lower_bound: int

    @property
    def utilization(self) -> float:
        """``n / spread`` -- fraction of the occupied address range that a
        worst-case n-cell array actually uses."""
        return self.n / self.spread

    @property
    def overhead_vs_bound(self) -> float:
        """``spread / lower_bound`` -- distance from the Theta(n log n)
        optimum (1.0 means matching the bound exactly)."""
        return self.spread / self.lower_bound


@dataclass(frozen=True, slots=True)
class SpreadCurve:
    """A spread sweep for one mapping."""

    mapping_name: str
    points: tuple[SpreadPoint, ...]

    def rows(self) -> list[tuple[int, int, int, float]]:
        """Tabular view: ``(n, spread, lower_bound, utilization)`` rows."""
        return [(p.n, p.spread, p.lower_bound, p.utilization) for p in self.points]

    def growth_exponents(self) -> list[float]:
        """Empirical log-log slopes between consecutive samples: an
        ``n log n`` curve shows slopes drifting down toward 1.0; an ``n**2``
        curve sits at 2.0.  Used by benches to classify curve *shape*
        without matching absolute values.

        Consecutive samples sharing the same ``n`` carry no slope
        information (``log(b.n / a.n) == 0``) and are merged -- only the
        first point at each ``n`` anchors a slope -- so duplicate-``n``
        grids are safe rather than a ``ZeroDivisionError``."""
        import math

        out: list[float] = []
        prev: SpreadPoint | None = None
        for p in self.points:
            if prev is not None and p.n != prev.n:
                out.append(
                    math.log(p.spread / prev.spread) / math.log(p.n / prev.n)
                )
            if prev is None or p.n != prev.n:
                prev = p
        return out


def spread_curve(
    mapping: StorageMapping, ns: Sequence[int], use_cache: bool = False
) -> SpreadCurve:
    """Sample ``S_mapping(n)`` at each ``n`` in *ns* (each positive,
    strictly increasing recommended for :meth:`SpreadCurve.growth_exponents`).

    With ``use_cache=True`` the sweep goes through the mapping's
    :meth:`~repro.core.base.StorageMapping.spread_cache`, which shares
    lattice enumeration work across the grid instead of re-enumerating
    from scratch at every ``n`` -- same values, much faster for mappings
    without a closed-form spread.

    >>> from repro.core.diagonal import DiagonalPairing
    >>> curve = spread_curve(DiagonalPairing(), [4, 16])
    >>> curve.rows()
    [(4, 10, 8, 0.4), (16, 136, 50, 0.11764705882352941)]
    """
    if not ns:
        raise DomainError("ns must be non-empty")
    for n in ns:
        if isinstance(n, bool) or not isinstance(n, int) or n <= 0:
            raise DomainError(f"each n must be a positive int, got {n!r}")
    if use_cache:
        spreads = mapping.spread_many(list(ns))
    else:
        spreads = [mapping.spread(n) for n in ns]
    points = [
        SpreadPoint(n=n, spread=s, lower_bound=spread_lower_bound(n))
        for n, s in zip(ns, spreads)
    ]
    return SpreadCurve(mapping_name=mapping.name, points=tuple(points))


def compare_spreads(
    mappings: Iterable[StorageMapping], ns: Sequence[int], use_cache: bool = False
) -> dict[str, SpreadCurve]:
    """Spread curves for several mappings over a common grid, keyed by name."""
    return {m.name: spread_curve(m, ns, use_cache=use_cache) for m in mappings}


def utilization(mapping: StorageMapping, n: int) -> float:
    """Worst-case storage utilization ``n / S(n)`` at size *n*."""
    if isinstance(n, bool) or not isinstance(n, int) or n <= 0:
        raise DomainError(f"n must be a positive int, got {n!r}")
    return n / mapping.spread(n)


def worst_shape(mapping: StorageMapping, n: int) -> tuple[int, int, int]:
    """The shape achieving ``S(n)``: returns ``(x, y, address)`` where
    ``(x, y)`` maximizes ``mapping.pair`` over ``xy <= n``.

    For the diagonal and square-shell PFs this is the degenerate ``1 x n``
    row -- the concrete witness behind the paper's "even worse
    (percentage-wise)" remark.

    >>> from repro.core.diagonal import DiagonalPairing
    >>> worst_shape(DiagonalPairing(), 8)
    (1, 8, 36)
    """
    if isinstance(n, bool) or not isinstance(n, int) or n <= 0:
        raise DomainError(f"n must be a positive int, got {n!r}")
    from repro.numbertheory.lattice import lattice_points_under_hyperbola

    best: tuple[int, int, int] | None = None
    for x, y in lattice_points_under_hyperbola(n):
        z = mapping.pair(x, y)
        if best is None or z > best[2]:
            best = (x, y, z)
    assert best is not None
    return best
