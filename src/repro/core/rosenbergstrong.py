"""The Rosenberg--Strong pairing function, on the paper's 1-indexed domain.

Rosenberg and Strong (1972) walk the square shells ``max(x, y)`` with one
closed form covering both arms.  On the 0-indexed coordinates
``u = x - 1``, ``v = y - 1``:

    ``r(u, v) = m**2 + m + u - v``  where  ``m = max(u, v)``

and this module shifts the bijection to the paper's 1-indexed convention
(``pair(x, y) = r(x-1, y-1) + 1``).  The shell walk goes *up* the column
arm (``v = m`` down to the corner) and then *out* the row arm -- the
clockwise orientation, which makes the 1-indexed Rosenberg--Strong
pointwise equal to the paper's own
:class:`~repro.core.squareshell.SquareShellPairingTwin` (the clockwise
twin of ``A_{1,1}``).  Szudzik's survey (arXiv:1706.04129) studies the
square-shell family under exactly this name; the reproduction keeps both
implementations -- this one from the classic ``max``-form with its own
direct inverse, the twin by coordinate exchange -- and the contract
battery pins their pointwise agreement as a differential test of two
independent derivations.

The inverse needs one integer square root: ``m = isqrt(z - 1)``, then the
signed offset ``d = (z - 1) - m**2 - m = u - v`` picks the arm.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import (
    EXACT_SAFE_ADDRESS_LIMIT,
    EXACT_SAFE_COORD_LIMIT,
    PairingFunction,
)
from repro.core.kernels import isqrt_kernel
from repro.numbertheory.integers import isqrt_exact

__all__ = ["RosenbergStrongPairing"]


class RosenbergStrongPairing(PairingFunction):
    """The Rosenberg--Strong PF ``r(u, v) = m**2 + m + u - v``, 1-indexed.

    >>> r = RosenbergStrongPairing()
    >>> r.table(3, 3)
    [[1, 2, 5], [4, 3, 6], [9, 8, 7]]
    >>> r.unpair(8)
    (3, 2)
    >>> r.pair(3, 2)
    8
    """

    closed_form_spread = True
    vector_safe_max_coord = EXACT_SAFE_COORD_LIMIT
    vector_safe_max_address = EXACT_SAFE_ADDRESS_LIMIT

    @property
    def name(self) -> str:
        return "rosenberg-strong"

    def _pair(self, x: int, y: int) -> int:
        u = x - 1
        v = y - 1
        m = max(u, v)
        return m * m + m + u - v + 1

    def _unpair(self, z: int) -> tuple[int, int]:
        # Shell m (0-indexed) holds w = z - 1 in m**2 .. m**2 + 2m.
        w = z - 1
        m = isqrt_exact(w)
        d = w - m * m - m  # u - v, in -m .. m
        if d < 0:
            # Column arm: v = m, u = m + d.
            return (m + d + 1, m + 1)
        # Row arm: u = m, v = m - d.
        return (m + 1, m - d + 1)

    # -- closed-form compactness ---------------------------------------

    def spread(self, n: int) -> int:
        """``S_r(n) = r(n, 1) = n**2``: the degenerate ``n x 1`` column is
        the worst shape, same as the square-shell family (the shells are
        identical; only the walk differs)."""
        if n <= 0:
            from repro.errors import DomainError

            raise DomainError(f"n must be positive, got {n}")
        return n * n

    def spread_for_shape(self, rows: int, cols: int) -> int:
        """Largest address in a ``rows x cols`` window: the row arm's end
        ``(rows, 1)`` dominates tall-or-square windows, the column arm's
        ``(rows, cols)`` entry dominates wide ones."""
        if rows <= 0 or cols <= 0:
            from repro.errors import DomainError

            raise DomainError(f"shape must be positive, got {rows}x{cols}")
        if rows >= cols:
            return rows * rows
        # Shell cols - 1, column arm: r = (cols-1)**2 + (rows-1).
        return (cols - 1) * (cols - 1) + rows

    # -- vectorized batch paths ----------------------------------------

    def _pair_kernel(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        u = x - 1
        v = y - 1
        m = np.maximum(u, v)
        return m * m + m + u - v + 1

    def _unpair_kernel(self, z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        w = z - 1
        m = isqrt_kernel(w)
        d = w - m * m - m
        column = d < 0
        x = np.where(column, m + d, m) + 1
        y = np.where(column, m, m - d) + 1
        return x, y

    def pair_array(self, xs, ys) -> np.ndarray:
        """Vectorized pairing: exact int64 kernel inside the coordinate
        window, exact scalar bignums outside it."""
        return self._pair_array_via(xs, ys, self._pair_kernel)

    def unpair_array(self, zs) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized inverse guarded by the exact-safe address window:
        addresses past the float64 mantissa take the scalar bignum path."""
        return self._unpair_array_via(zs, self._unpair_kernel)
