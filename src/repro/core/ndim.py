"""Multidimensional pairing by iteration (Section 1.1).

"The utility of PFs ... resides in their allowing one to slip gracefully
between one- and two-dimensional worldviews -- and, **by iteration, among
worldviews of arbitrary finite dimensionalities**."

:class:`IteratedPairing` realizes the iteration: given a 2-D pairing
function ``F``, the ``d``-dimensional mapping is

    ``P_1(x) = x``
    ``P_d(x_1, ..., x_d) = F(x_1, P_{d-1}(x_2, ..., x_d))``

which is a bijection ``N^d <-> N`` whenever ``F`` is a bijection (proof by
induction: both composition steps are bijections).  Different levels may
use different 2-D PFs -- e.g. square-shell at the top for compactness in
the leading axis pair and diagonal below -- which matters because the
iteration's compactness is governed by how the inner image integers grow.

The paper notes that extending the Section 3 storage results to higher
dimensionalities "is immediate"; :mod:`repro.arrays.ndarray` builds the
d-dimensional extendible array on top of this class, and the zero-move
reshape guarantee carries over verbatim.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.base import PairingFunction, validate_address
from repro.errors import ConfigurationError, DomainError

__all__ = ["IteratedPairing"]


class IteratedPairing:
    """A bijection ``N^d <-> N`` built by iterating 2-D pairing functions.

    Parameters
    ----------
    dimensions:
        Arity ``d >= 1``.
    levels:
        Either one :class:`~repro.core.base.PairingFunction` (used at every
        level) or a sequence of ``d - 1`` of them; ``levels[i]`` joins
        coordinate ``i`` with the encoding of coordinates ``i+1 ..``.

    >>> from repro.core.squareshell import SquareShellPairing
    >>> p3 = IteratedPairing(3, SquareShellPairing())
    >>> z = p3.pair((2, 3, 4))
    >>> p3.unpair(z)
    (2, 3, 4)
    """

    def __init__(
        self,
        dimensions: int,
        levels: PairingFunction | Sequence[PairingFunction],
    ) -> None:
        if isinstance(dimensions, bool) or not isinstance(dimensions, int):
            raise ConfigurationError(
                f"dimensions must be an int, got {type(dimensions).__name__}"
            )
        if dimensions < 1:
            raise ConfigurationError(f"dimensions must be >= 1, got {dimensions}")
        if isinstance(levels, PairingFunction):
            level_list = [levels] * max(0, dimensions - 1)
        else:
            level_list = list(levels)
            if len(level_list) != max(0, dimensions - 1):
                raise ConfigurationError(
                    f"need {dimensions - 1} level PFs for {dimensions} dimensions, "
                    f"got {len(level_list)}"
                )
        for pf in level_list:
            if not isinstance(pf, PairingFunction):
                raise ConfigurationError(
                    "levels must be bijective PairingFunctions, got "
                    f"{type(pf).__name__}"
                )
        self.dimensions = dimensions
        self._levels = level_list

    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        if self.dimensions == 1:
            return "identity-1d"
        inner = ",".join(pf.name for pf in self._levels)
        return f"iterated-{self.dimensions}d({inner})"

    @property
    def levels(self) -> tuple[PairingFunction, ...]:
        return tuple(self._levels)

    def _validate_point(self, point: Sequence[int]) -> tuple[int, ...]:
        coords = tuple(point)
        if len(coords) != self.dimensions:
            raise DomainError(
                f"expected {self.dimensions} coordinates, got {len(coords)}"
            )
        for c in coords:
            if isinstance(c, bool) or not isinstance(c, int) or c <= 0:
                raise DomainError(f"coordinates must be positive ints, got {c!r}")
        return coords

    # ------------------------------------------------------------------

    def pair(self, point: Sequence[int]) -> int:
        """Encode a ``d``-tuple of positive integers as one positive
        integer."""
        coords = self._validate_point(point)
        encoded = coords[-1]
        # Fold right-to-left: level i joins coordinate i with the tail code.
        for i in range(self.dimensions - 2, -1, -1):
            encoded = self._levels[i]._pair(coords[i], encoded)
        return encoded

    def unpair(self, z: int) -> tuple[int, ...]:
        """Decode one positive integer back into its ``d``-tuple."""
        z = validate_address(z)
        coords: list[int] = []
        rest = z
        for i in range(self.dimensions - 1):
            head, rest = self._levels[i]._unpair(rest)
            coords.append(head)
        coords.append(rest)
        return tuple(coords)

    def __call__(self, *coords: int) -> int:
        """Paper-style call: ``p(x, y, z)`` instead of ``p.pair((x, y, z))``."""
        return self.pair(coords)

    # ------------------------------------------------------------------

    def check_roundtrip_box(self, side: int) -> None:
        """Assert bijectivity of the encoding on the ``side**d`` box: all
        codes distinct, every code decodes back."""
        if side <= 0:
            raise DomainError(f"side must be positive, got {side}")
        from itertools import product

        seen: dict[int, tuple[int, ...]] = {}
        for point in product(range(1, side + 1), repeat=self.dimensions):
            z = self.pair(point)
            if z in seen:
                raise AssertionError(
                    f"{self.name}: collision {point} vs {seen[z]} at code {z}"
                )
            seen[z] = point
            back = self.unpair(z)
            if back != point:
                raise AssertionError(
                    f"{self.name}: unpair(pair({point})) = {back}"
                )

    def check_bijective_prefix(self, count: int) -> None:
        """Assert codes ``1..count`` decode to distinct points that
        re-encode to themselves."""
        if count <= 0:
            raise DomainError(f"count must be positive, got {count}")
        seen: set[tuple[int, ...]] = set()
        for z in range(1, count + 1):
            point = self.unpair(z)
            if point in seen:
                raise AssertionError(f"{self.name}: duplicate decode at {z}")
            seen.add(point)
            if self.pair(point) != z:
                raise AssertionError(f"{self.name}: re-encode mismatch at {z}")

    def spread_for_shape(self, dims: Sequence[int]) -> int:
        """Largest code over the box ``dims[0] x ... x dims[d-1]`` (exact
        enumeration; the d-dimensional analogue of the 2-D per-shape
        spread)."""
        from itertools import product

        sizes = tuple(dims)
        if len(sizes) != self.dimensions or any(s <= 0 for s in sizes):
            raise DomainError(f"bad box {dims!r} for {self.dimensions}-d mapping")
        return max(
            self.pair(point)
            for point in product(*(range(1, s + 1) for s in sizes))
        )

    def __repr__(self) -> str:
        return f"<IteratedPairing {self.name!r}>"
