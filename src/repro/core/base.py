"""Abstract base classes for pairing functions and storage mappings.

Terminology (Section 1): a *pairing function* (PF) is a bijection
``N x N <-> N`` over the positive integers.  For array storage one sometimes
settles for an *injective* storage mapping -- the dovetail combinator of
Section 3.2.2 is injective but not onto -- so the class hierarchy is:

* :class:`StorageMapping` -- injective ``N x N -> N``; ``unpair`` may raise
  :class:`~repro.errors.NotInImageError` for addresses outside the image.
* :class:`PairingFunction` -- a true bijection; ``unpair`` is total on
  ``N`` and ``check_bijective_prefix`` can verify surjectivity windows.

Both expose scalar ``pair``/``unpair`` plus numpy batch paths
(``pair_array``/``unpair_array``).  The batch paths default to an exact
object-dtype loop (APF values overflow int64 *fast* -- ``T^<1>(x, y)``
exceeds ``2**63`` at ``x = 63``); concrete subclasses with polynomial growth
override them with true vectorized int64 kernels, and the test suite
cross-checks the two paths against each other.

The *spread* (3.1), the paper's compactness measure, is provided generically
by exact enumeration of the lattice points under ``xy = n`` and overridden
with closed forms where the paper derives them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Sequence

import numpy as np

from repro.errors import DomainError
from repro.numbertheory.lattice import lattice_points_under_hyperbola

__all__ = [
    "StorageMapping",
    "PairingFunction",
    "validate_coordinates",
    "validate_address",
    "EXACT_SAFE_ADDRESS_LIMIT",
    "EXACT_SAFE_COORD_LIMIT",
]

#: Largest address for which the float64-estimate + "repair by one" int64
#: inverse kernels are provably exact.  Above the float64 mantissa
#: (2**53) nearby addresses collapse to the same double, so the repaired
#: estimate can start from the wrong integer, and the repair arithmetic
#: itself (``t*(t+1)``, ``(m+1)**2``) approaches int64 overflow.  Larger
#: addresses must take the scalar bignum path.
EXACT_SAFE_ADDRESS_LIMIT = 2**53 - 1

#: Largest coordinate for which the int64 forward kernels cannot overflow:
#: the quadratic-growth kernels square sums of coordinates, so keeping
#: coordinates below 2**30 keeps every intermediate below 2**62.
EXACT_SAFE_COORD_LIMIT = 2**30


def validate_coordinates(x: int, y: int) -> tuple[int, int]:
    """Validate a coordinate pair from ``N x N`` (1-indexed, per the paper).

    Returns ``(x, y)`` unchanged; raises :class:`DomainError` otherwise.
    """
    if isinstance(x, bool) or not isinstance(x, (int, np.integer)):
        raise DomainError(f"x must be an int, got {type(x).__name__}")
    if isinstance(y, bool) or not isinstance(y, (int, np.integer)):
        raise DomainError(f"y must be an int, got {type(y).__name__}")
    x = int(x)
    y = int(y)
    if x <= 0 or y <= 0:
        raise DomainError(f"coordinates must be positive, got ({x}, {y})")
    return x, y


def validate_address(z: int) -> int:
    """Validate an address from ``N`` (1-indexed)."""
    if isinstance(z, bool) or not isinstance(z, (int, np.integer)):
        raise DomainError(f"address must be an int, got {type(z).__name__}")
    z = int(z)
    if z <= 0:
        raise DomainError(f"address must be positive, got {z}")
    return z


class StorageMapping(ABC):
    """An injective mapping ``N x N -> N`` usable as an array storage map.

    Subclasses implement :meth:`_pair` and :meth:`_unpair` on validated
    inputs; the public :meth:`pair` / :meth:`unpair` add domain checking.
    """

    #: Whether the mapping is onto ``N`` (a true pairing function).
    surjective: bool = True

    #: Whether :meth:`spread` is a closed form (cheap, non-enumerating).
    #: Consulted by :class:`repro.perf.spread_cache.SpreadCache` to decide
    #: between delegating and incremental lattice enumeration.
    closed_form_spread: bool = False

    #: Exact-safe window of the vectorized int64 kernels, or ``None`` when
    #: the subclass provides no vectorized fast path.  Inputs outside the
    #: window are routed to the exact scalar bignum path.
    vector_safe_max_coord: int | None = None
    vector_safe_max_address: int | None = None

    @property
    @abstractmethod
    def name(self) -> str:
        """Short human-readable identifier (used by the registry and CLI)."""

    @abstractmethod
    def _pair(self, x: int, y: int) -> int:
        """Map validated positive ``(x, y)`` to its positive address."""

    @abstractmethod
    def _unpair(self, z: int) -> tuple[int, int]:
        """Map validated positive address ``z`` back to its coordinates.

        May raise :class:`~repro.errors.NotInImageError` when the mapping is
        not surjective.
        """

    # ------------------------------------------------------------------
    # Public scalar API
    # ------------------------------------------------------------------

    def pair(self, x: int, y: int) -> int:
        """Address of position ``(x, y)`` (both 1-indexed).

        Raises :class:`DomainError` unless ``x >= 1`` and ``y >= 1``.
        """
        x, y = validate_coordinates(x, y)
        return self._pair(x, y)

    def unpair(self, z: int) -> tuple[int, int]:
        """Coordinates stored at address ``z`` (1-indexed).

        Raises :class:`DomainError` for ``z < 1`` and, for non-surjective
        mappings, :class:`~repro.errors.NotInImageError` when no position
        maps to ``z``.
        """
        z = validate_address(z)
        return self._unpair(z)

    def __call__(self, x: int, y: int) -> int:
        """Alias for :meth:`pair`, so instances read like the paper's
        ``F(x, y)`` notation."""
        return self.pair(x, y)

    # ------------------------------------------------------------------
    # Batch API (numpy)
    # ------------------------------------------------------------------

    def pair_array(
        self, xs: Sequence[int] | np.ndarray, ys: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`pair` over parallel coordinate arrays.

        The base implementation is an exact object-dtype loop (safe for the
        exponentially-growing APFs); polynomial-growth subclasses override
        it with int64 numpy kernels.  Inputs are broadcast against each
        other like any numpy binary operation.
        """
        xa = np.asarray(xs)
        ya = np.asarray(ys)
        xb, yb = np.broadcast_arrays(xa, ya)
        out = np.empty(xb.shape, dtype=object)
        flat_out = out.reshape(-1)
        for i, (x, y) in enumerate(zip(xb.reshape(-1), yb.reshape(-1))):
            flat_out[i] = self.pair(int(x), int(y))
        return out

    def unpair_array(self, zs: Sequence[int] | np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`unpair`; returns ``(xs, ys)`` object arrays."""
        za = np.asarray(zs)
        xs = np.empty(za.shape, dtype=object)
        ys = np.empty(za.shape, dtype=object)
        fx, fy = xs.reshape(-1), ys.reshape(-1)
        for i, z in enumerate(za.reshape(-1)):
            fx[i], fy[i] = self.unpair(int(z))
        return xs, ys

    # ------------------------------------------------------------------
    # Guarded kernel dispatch (the exact-safe window)
    # ------------------------------------------------------------------

    @staticmethod
    def _as_exact_array(values) -> np.ndarray:
        """``np.asarray`` that never loses integer exactness: a Python list
        mixing int64-range and uint64-range ints promotes to float64, which
        silently rounds values past 2**53 -- re-read those as exact object
        arrays instead.  (Genuine float elements still reach the scalar
        validators and raise :class:`DomainError` there, as before.)
        """
        if isinstance(values, np.ndarray):
            return values
        arr = np.asarray(values)
        if arr.dtype.kind == "f":
            return np.asarray(values, dtype=object)
        return arr

    def _pair_array_via(self, xs, ys, kernel) -> np.ndarray:
        """Run the int64 *kernel* when every coordinate fits the exact-safe
        window; otherwise fall back to the exact object-dtype scalar loop.

        Subclasses with vectorized forward kernels implement ``pair_array``
        as ``self._pair_array_via(xs, ys, self._pair_kernel)``.
        """
        limit = self.vector_safe_max_coord
        xa = self._as_exact_array(xs)
        ya = self._as_exact_array(ys)
        if (
            limit is not None
            and xa.dtype.kind in "iu"
            and ya.dtype.kind in "iu"
        ):
            if xa.size == 0 or ya.size == 0:
                xb, yb = np.broadcast_arrays(xa, ya)
                return np.zeros(xb.shape, dtype=np.int64)
            if int(xa.min()) <= 0 or int(ya.min()) <= 0:
                raise DomainError("coordinates must be positive")
            if int(xa.max()) <= limit and int(ya.max()) <= limit:
                return kernel(xa.astype(np.int64), ya.astype(np.int64))
        # Out-of-window, float, or bignum inputs: exact scalar loop
        # (validates every element, so bad dtypes raise DomainError).
        return StorageMapping.pair_array(self, xa, ya)

    def _unpair_array_via(self, zs, kernel) -> tuple[np.ndarray, np.ndarray]:
        """Run the int64 inverse *kernel* on the addresses inside the
        exact-safe window and the scalar bignum path on the rest.

        A homogeneous in-window batch stays entirely on the kernel (int64
        outputs, the fast common case); a batch containing any out-of-window
        address is split element-wise and returned as object arrays.
        """
        limit = self.vector_safe_max_address
        za = self._as_exact_array(zs)
        if limit is not None and za.dtype.kind in "iu":
            if za.size == 0:
                empty = np.zeros(za.shape, dtype=np.int64)
                return empty, empty.copy()
            if int(za.min()) <= 0:
                raise DomainError("addresses must be positive")
            if int(za.max()) <= limit:
                return kernel(za.astype(np.int64))
        # Mixed / bignum / non-integer input: exact element-wise split.
        flat = za.reshape(-1)
        xs = np.empty(flat.shape, dtype=object)
        ys = np.empty(flat.shape, dtype=object)
        safe: list[int] = []
        for i, z in enumerate(flat):
            if (
                limit is not None
                and isinstance(z, (int, np.integer))
                and not isinstance(z, bool)
                and 0 < int(z) <= limit
            ):
                safe.append(i)
            else:
                # Scalar path validates (rejects floats/bools/nonpositives).
                xs[i], ys[i] = self.unpair(z)
        if safe:
            sub = np.fromiter((int(flat[i]) for i in safe), dtype=np.int64, count=len(safe))
            kx, ky = kernel(sub)
            for j, i in enumerate(safe):
                xs[i] = int(kx[j])
                ys[i] = int(ky[j])
        return xs.reshape(za.shape), ys.reshape(za.shape)

    # ------------------------------------------------------------------
    # Sampling and display
    # ------------------------------------------------------------------

    def table(self, rows: int, cols: int) -> list[list[int]]:
        """The paper's Figure 1 sampling template: a ``rows x cols`` table
        whose entry ``[x-1][y-1]`` is ``pair(x, y)``.

        >>> from repro.core.diagonal import DiagonalPairing
        >>> DiagonalPairing().table(2, 3)
        [[1, 3, 6], [2, 5, 9]]
        """
        if rows <= 0 or cols <= 0:
            raise DomainError(f"table shape must be positive, got {rows}x{cols}")
        return [[self._pair(x, y) for y in range(1, cols + 1)] for x in range(1, rows + 1)]

    def image_prefix(self, count: int) -> list[int]:
        """The first *count* addresses in enumeration order: the sorted list
        of all addresses ``<= the count-th smallest``.  Mainly a test hook;
        implemented by unpairing ``1..count`` for surjective mappings and by
        scanning for injective ones."""
        if count <= 0:
            raise DomainError(f"count must be positive, got {count}")
        if self.surjective:
            return list(range(1, count + 1))
        found: list[int] = []
        z = 1
        from repro.errors import NotInImageError

        while len(found) < count:
            try:
                self._unpair(z)
            except NotInImageError:
                pass
            else:
                found.append(z)
            z += 1
        return found

    # ------------------------------------------------------------------
    # Compactness (Section 3.2)
    # ------------------------------------------------------------------

    def spread(self, n: int) -> int:
        """The spread function ``S(n) = max{pair(x, y) : x * y <= n}`` of
        definition (3.1): the largest address assigned to any position of
        any array with at most *n* cells.

        The generic implementation enumerates all ``Theta(n log n)`` lattice
        points under the hyperbola; subclasses override with the paper's
        closed forms where available.
        """
        if isinstance(n, bool) or not isinstance(n, int) or n <= 0:
            raise DomainError(f"n must be a positive int, got {n!r}")
        return max(self._pair(x, y) for x, y in lattice_points_under_hyperbola(n))

    def spread_cache(self):
        """This instance's lazily created
        :class:`~repro.perf.spread_cache.SpreadCache`: memoized spread
        evaluation that extends incrementally from previously computed
        sizes instead of re-enumerating the whole lattice."""
        cache = getattr(self, "_spread_cache", None)
        if cache is None:
            # reprolint: allow[R004] sanctioned lazy inversion: the perf
            # cache layers on core, imported only on first use to keep
            # core importable without perf
            from repro.perf.spread_cache import SpreadCache

            cache = SpreadCache(self)
            self._spread_cache = cache
        return cache

    def spread_many(self, ns: Sequence[int]) -> list[int]:
        """Spread at each size in *ns*, through :meth:`spread_cache` --
        equal to ``[self.spread(n) for n in ns]`` but sharing enumeration
        work across the grid."""
        return self.spread_cache().spread_many(ns)

    def spread_for_shape(self, rows: int, cols: int) -> int:
        """Largest address assigned to any position of the ``rows x cols``
        array -- the per-shape spread used by claims like "``D`` spreads the
        n x n array over 2n** 2 addresses"."""
        if rows <= 0 or cols <= 0:
            raise DomainError(f"shape must be positive, got {rows}x{cols}")
        return max(
            self._pair(x, y)
            for x in range(1, rows + 1)
            for y in range(1, cols + 1)
        )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def check_roundtrip_window(self, rows: int, cols: int) -> None:
        """Assert ``unpair(pair(x, y)) == (x, y)`` for the whole window and
        that all addresses in the window are distinct (injectivity).

        Raises ``AssertionError`` with a pinpointing message on failure.
        """
        seen: dict[int, tuple[int, int]] = {}
        for x in range(1, rows + 1):
            for y in range(1, cols + 1):
                z = self._pair(x, y)
                if z <= 0:
                    raise AssertionError(f"{self.name}: pair({x},{y}) = {z} <= 0")
                if z in seen:
                    raise AssertionError(
                        f"{self.name}: collision pair({x},{y}) == pair{seen[z]} == {z}"
                    )
                seen[z] = (x, y)
                back = self._unpair(z)
                if back != (x, y):
                    raise AssertionError(
                        f"{self.name}: unpair(pair({x},{y})) = {back}, expected ({x},{y})"
                    )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class PairingFunction(StorageMapping):
    """A true pairing function: a *bijection* ``N x N <-> N``.

    Adds surjectivity-aware validation on top of :class:`StorageMapping`.
    """

    surjective = True

    def enumerate_positions(self, count: int) -> Iterator[tuple[int, int]]:
        """Yield the positions in address order: ``unpair(1), unpair(2), ...``
        for *count* addresses.  This is the "enumeration of N x N" view of
        Theorem 3.1.

        >>> from repro.core.diagonal import DiagonalPairing
        >>> list(DiagonalPairing().enumerate_positions(4))
        [(1, 1), (2, 1), (1, 2), (3, 1)]
        """
        if count <= 0:
            raise DomainError(f"count must be positive, got {count}")
        for z in range(1, count + 1):
            yield self._unpair(z)

    def check_bijective_prefix(self, count: int) -> None:
        """Assert that addresses ``1..count`` decode to *distinct* positions
        that re-encode to themselves -- i.e. the mapping is a bijection on
        this prefix of its range.

        Together with :meth:`check_roundtrip_window` (domain side), this
        gives the two-sided finite certificate of bijectivity used by the
        property-based tests.
        """
        seen: set[tuple[int, int]] = set()
        for z in range(1, count + 1):
            pos = self._unpair(z)
            if pos in seen:
                raise AssertionError(
                    f"{self.name}: address {z} decodes to duplicate position {pos}"
                )
            seen.add(pos)
            back = self._pair(*pos)
            if back != z:
                raise AssertionError(
                    f"{self.name}: pair(unpair({z})) = {back}, expected {z}"
                )
