"""Address locality of storage mappings (the Section 3 Aside's "by
position, by row/column, by block (at varying computational costs)").

When an array is stored through a PF, *where consecutive logical cells
land* determines traversal cost on real memory hierarchies.  Two
complementary measures:

* **jump profile** -- the distribution of ``|A(x, y+1) - A(x, y)|`` along a
  row walk (resp. column walk): additive PFs have a *constant* row jump
  (the stride -- that is what "additive" buys), shell PFs have jumps that
  grow with the shell index;
* **window span** -- the address range touched by a logical ``b x b``
  block: compact-on-squares PFs keep blocks near the origin dense.

These feed the Step 2b ablation (the in-shell order changes locality but
not spread) and quantify the access-cost axis the paper mentions but does
not tabulate.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.core.base import StorageMapping
from repro.errors import DomainError

__all__ = ["JumpProfile", "row_jump_profile", "col_jump_profile", "block_span"]


@dataclass(frozen=True, slots=True)
class JumpProfile:
    """Summary of the |address delta| distribution along a walk."""

    walk: str
    samples: int
    mean: float
    maximum: int
    constant: bool

    @classmethod
    def from_jumps(cls, walk: str, jumps: list[int]) -> "JumpProfile":
        if not jumps:
            raise DomainError("need at least one jump")
        return cls(
            walk=walk,
            samples=len(jumps),
            mean=statistics.fmean(jumps),
            maximum=max(jumps),
            constant=len(set(jumps)) == 1,
        )


def row_jump_profile(
    mapping: StorageMapping, row: int, cols: int
) -> JumpProfile:
    """Jump profile of walking row *row* left-to-right over *cols* cells.

    For an additive PF this is constant (= the row's stride): the paper's
    ``S(v, t)`` being "easily computed" shows up here as perfect
    predictability of the walk.

    >>> from repro.apf.families import TSharp
    >>> row_jump_profile(TSharp(), 3, 10).constant
    True
    >>> from repro.core.squareshell import SquareShellPairing
    >>> row_jump_profile(SquareShellPairing(), 3, 10).constant
    False
    """
    if row <= 0 or cols <= 1:
        raise DomainError("need row >= 1 and cols >= 2")
    addresses = [mapping.pair(row, y) for y in range(1, cols + 1)]
    jumps = [abs(b - a) for a, b in zip(addresses, addresses[1:])]
    return JumpProfile.from_jumps(f"row-{row}", jumps)


def col_jump_profile(
    mapping: StorageMapping, col: int, rows: int
) -> JumpProfile:
    """Jump profile of walking column *col* top-to-bottom over *rows*
    cells."""
    if col <= 0 or rows <= 1:
        raise DomainError("need col >= 1 and rows >= 2")
    addresses = [mapping.pair(x, col) for x in range(1, rows + 1)]
    jumps = [abs(b - a) for a, b in zip(addresses, addresses[1:])]
    return JumpProfile.from_jumps(f"col-{col}", jumps)


def block_span(
    mapping: StorageMapping, x0: int, y0: int, side: int
) -> tuple[int, int, float]:
    """The address range of the ``side x side`` block anchored at
    ``(x0, y0)``: returns ``(min_address, max_address, density)`` where
    density = block cells / span (1.0 = the block is a contiguous address
    run).

    >>> from repro.core.squareshell import SquareShellPairing
    >>> block_span(SquareShellPairing(), 1, 1, 4)   # the 4x4 corner block
    (1, 16, 1.0)
    """
    if x0 <= 0 or y0 <= 0 or side <= 0:
        raise DomainError("need positive anchor and side")
    addresses = [
        mapping.pair(x, y)
        for x in range(x0, x0 + side)
        for y in range(y0, y0 + side)
    ]
    low, high = min(addresses), max(addresses)
    span = high - low + 1
    return (low, high, len(addresses) / span)
