"""Dovetailing storage mappings (Section 3.2.2).

Given ``m`` storage mappings ``A_1 .. A_m``, dovetailing builds one mapping
that is nearly as compact as the best of them on every input:

1. Retarget each ``A_k`` into the congruence class ``(k-1) mod m``:
   ``A_k^(m)(x, y) = m * A_k(x, y) + k - 1``.
2. Take the pointwise minimum: ``A(x, y) = min_k A_k^(m)(x, y)``.

The result is *injective* (two equal addresses share a congruence class,
hence come from the same bijective ``A_k^(m)``) and satisfies the paper's
compactness bound

    ``S_A(n) <= m * min_k S_{A_k}(n) + (m - 1)``

(the paper states the clean ``m * min`` form; the additive ``m - 1`` is the
congruence offset, absorbed by the constant).  It is generally *not*
surjective: the address ``A_k^(m)(x, y)`` goes unused whenever some other
``A_j^(m)(x, y)`` is smaller, so ``unpair`` raises
:class:`~repro.errors.NotInImageError` on unused addresses.

One caveat the paper glosses: with 1-indexed addresses, class ``k - 1 = 0``
would make ``m * A_k`` skip address pattern alignment; we keep the paper's
formula verbatim, so addresses live in ``{m*1 + 0, ...} = {m, ...}`` for
``k = 1`` etc.  All bounds hold as stated.

Typical use (Section 3.2.2): dovetail ``A_{a_1,b_1} .. A_{a_m,b_m}`` to get
a mapping that stores arrays of any of ``m`` favored aspect ratios within
``m * n`` addresses.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.base import StorageMapping
from repro.errors import ConfigurationError, NotInImageError

__all__ = ["DovetailMapping"]


class DovetailMapping(StorageMapping):
    """The dovetail of ``m >= 1`` storage mappings.

    >>> from repro.core.aspectratio import AspectRatioPairing
    >>> dt = DovetailMapping([AspectRatioPairing(1, 2), AspectRatioPairing(2, 1)])
    >>> z = dt.pair(3, 5)
    >>> dt.unpair(z)
    (3, 5)
    """

    surjective = False

    def __init__(self, mappings: Sequence[StorageMapping]) -> None:
        if not mappings:
            raise ConfigurationError("dovetail requires at least one mapping")
        for mapping in mappings:
            if not isinstance(mapping, StorageMapping):
                raise ConfigurationError(
                    f"dovetail components must be StorageMappings, got {type(mapping).__name__}"
                )
            if not mapping.surjective:
                raise ConfigurationError(
                    "dovetail components must be bijective pairing functions; "
                    f"{mapping.name!r} is not surjective"
                )
        self._mappings = list(mappings)

    @property
    def name(self) -> str:
        inner = "+".join(m.name for m in self._mappings)
        return f"dovetail({inner})"

    @property
    def arity(self) -> int:
        """The number ``m`` of dovetailed mappings."""
        return len(self._mappings)

    @property
    def components(self) -> tuple[StorageMapping, ...]:
        return tuple(self._mappings)

    # ------------------------------------------------------------------

    def _retargeted(self, k: int, x: int, y: int) -> int:
        """``A_k^(m)(x, y) = m * A_k(x, y) + (k - 1)`` with 1-based ``k``."""
        m = len(self._mappings)
        return m * self._mappings[k - 1]._pair(x, y) + (k - 1)

    def _pair(self, x: int, y: int) -> int:
        m = len(self._mappings)
        return min(self._retargeted(k, x, y) for k in range(1, m + 1))

    def _unpair(self, z: int) -> tuple[int, int]:
        m = len(self._mappings)
        k = z % m + 1
        quotient = (z - (k - 1)) // m
        if quotient <= 0:
            raise NotInImageError(f"address {z} is below the image of {self.name}")
        x, y = self._mappings[k - 1]._unpair(quotient)
        # z came from component k at (x, y); it is used iff it is the min.
        if self._pair(x, y) != z:
            raise NotInImageError(
                f"address {z} is shadowed by a smaller component address at ({x}, {y})"
            )
        return (x, y)

    # ------------------------------------------------------------------

    def spread(self, n: int) -> int:
        """Exact spread by enumeration.  The bound of Section 3.2.2,
        ``spread(n) <= arity * min_k components[k].spread(n) + arity - 1``,
        is asserted by the test suite and measured by the ablation bench."""
        return super().spread(n)

    def spread_bound(self, n: int) -> int:
        """The guaranteed upper bound ``m * min_k S_{A_k}(n) + (m - 1)``."""
        m = len(self._mappings)
        return m * min(comp.spread(n) for comp in self._mappings) + (m - 1)
