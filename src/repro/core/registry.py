"""A name-based registry of the library's storage mappings.

The CLI, benchmarks, and examples refer to mappings by short stable names
(``"diagonal"``, ``"hyperbolic"``, ``"apf-sharp"``, ...).  The registry maps
those names to zero-argument factories so every lookup returns a *fresh*
instance (some mappings carry caches; benchmarks must not share them).

Parameterized families register a factory-of-parameters under a prefix:
``get_pairing("aspect-2x3")`` and ``get_pairing("apf-bracket-3")`` parse
their suffixes.
"""

from __future__ import annotations

import re
from typing import Callable

from repro.core.base import StorageMapping
from repro.errors import ConfigurationError

__all__ = ["register", "get_pairing", "available_names"]

_FACTORIES: dict[str, Callable[[], StorageMapping]] = {}


def register(name: str, factory: Callable[[], StorageMapping]) -> None:
    """Register *factory* under *name* (overwriting is an error: stable names
    are part of the CLI contract)."""
    if name in _FACTORIES:
        raise ConfigurationError(f"mapping name already registered: {name!r}")
    _FACTORIES[name] = factory


def available_names() -> list[str]:
    """All registered fixed names, sorted (parameterized prefixes like
    ``aspect-AxB`` are documented in :func:`get_pairing`)."""
    _ensure_builtins()
    return sorted(_FACTORIES)


_ASPECT_RE = re.compile(r"^aspect-(\d+)x(\d+)$")
_BRACKET_RE = re.compile(r"^apf-bracket-(\d+)$")
_POWER_RE = re.compile(r"^apf-power-(\d+)$")
_BINPROP_RE = re.compile(r"^binprop-(\d+)$")

_builtins_loaded = False


def _ensure_builtins() -> None:
    """Populate the registry lazily (avoids import cycles at package load)."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True

    from repro.core.binaryproportional import BinaryProportionalPairing
    from repro.core.diagonal import DiagonalPairing, DiagonalPairingTwin
    from repro.core.hyperbolic import HyperbolicPairing
    from repro.core.rosenbergstrong import RosenbergStrongPairing
    from repro.core.squareshell import SquareShellPairing, SquareShellPairingTwin
    from repro.core.szudzik import SzudzikElegantPairing
    from repro.apf.families import (
        TBracket,
        TSharp,
        TStar,
        TPower,
        ExponentialKappaAPF,
    )

    register("diagonal", DiagonalPairing)
    register("diagonal-twin", DiagonalPairingTwin)
    register("square-shell", SquareShellPairing)
    register("square-shell-twin", SquareShellPairingTwin)
    register("hyperbolic", HyperbolicPairing)
    register("szudzik", SzudzikElegantPairing)
    register("rosenberg-strong", RosenbergStrongPairing)
    for b in (2, 4, 16):
        register(f"binprop-{b}", lambda b=b: BinaryProportionalPairing(b))
    register("apf-sharp", TSharp)
    register("apf-star", TStar)
    register("apf-exponential", ExponentialKappaAPF)
    for c in (1, 2, 3, 4):
        register(f"apf-bracket-{c}", lambda c=c: TBracket(c))


def get_pairing(name: str) -> StorageMapping:
    """Instantiate a mapping by name.

    Fixed names are listed by :func:`available_names`.  Parameterized forms:

    * ``aspect-AxB`` -- :class:`~repro.core.aspectratio.AspectRatioPairing`
      with ratio ``<A, B>`` (e.g. ``aspect-1x2``);
    * ``binprop-B`` -- the binary-proportional
      :class:`~repro.core.binaryproportional.BinaryProportionalPairing`
      with shell ratio ``B`` for any positive ``B``;
    * ``apf-bracket-C`` -- the APF ``T^<C>`` for any positive ``C``;
    * ``apf-power-K`` -- the APF ``T^[K]`` for any positive ``K``.

    >>> get_pairing("diagonal").pair(1, 1)
    1
    >>> get_pairing("aspect-2x3").name
    'aspect-2x3'
    """
    _ensure_builtins()
    factory = _FACTORIES.get(name)
    if factory is not None:
        return factory()
    m = _ASPECT_RE.match(name)
    if m:
        from repro.core.aspectratio import AspectRatioPairing

        return AspectRatioPairing(int(m.group(1)), int(m.group(2)))
    m = _BINPROP_RE.match(name)
    if m:
        from repro.core.binaryproportional import BinaryProportionalPairing

        return BinaryProportionalPairing(int(m.group(1)))
    m = _BRACKET_RE.match(name)
    if m:
        from repro.apf.families import TBracket

        return TBracket(int(m.group(1)))
    m = _POWER_RE.match(name)
    if m:
        from repro.apf.families import TPower

        return TPower(int(m.group(1)))
    raise ConfigurationError(
        f"unknown mapping name {name!r}; known: {', '.join(available_names())} "
        "plus parameterized aspect-AxB / binprop-B / apf-bracket-C / apf-power-K"
    )
