"""Szudzik's "elegant" pairing function, on the paper's 1-indexed domain.

Szudzik (2006) walks the same square shells ``max(x, y) = 1, 2, 3, ...``
as the paper's ``A_{1,1}`` but orders each shell differently: first the
column arm bottom-up (``x < y``), then across the corner and down the row
arm (``x >= y``).  On the 0-indexed coordinates ``u = x - 1``,
``v = y - 1``:

    ``E(u, v) = v**2 + u          if u < v``
    ``E(u, v) = u**2 + u + v      if u >= v``

and this module shifts the whole bijection to the paper's 1-indexed
``N x N <-> N`` convention (``pair(x, y) = E(x-1, y-1) + 1``).  The
inverse needs one integer square root: with ``w = z - 1`` and
``m = isqrt(w)``, the remainder ``r = w - m**2`` is ``< m`` exactly on
the column arm.

Compactness matches the square-shell family (shell ``max(x, y) = k``
occupies addresses ``(k-1)**2 + 1 .. k**2``); only the in-shell order --
and therefore the per-shape spread -- differs from ``A_{1,1}``.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import (
    EXACT_SAFE_ADDRESS_LIMIT,
    EXACT_SAFE_COORD_LIMIT,
    PairingFunction,
)
from repro.core.kernels import isqrt_kernel
from repro.numbertheory.integers import isqrt_exact

__all__ = ["SzudzikElegantPairing"]


class SzudzikElegantPairing(PairingFunction):
    """Szudzik's elegant pairing, 1-indexed.

    >>> s = SzudzikElegantPairing()
    >>> s.table(3, 3)
    [[1, 2, 5], [3, 4, 6], [7, 8, 9]]
    >>> s.unpair(6)
    (2, 3)
    >>> s.pair(2, 3)
    6
    """

    closed_form_spread = True
    vector_safe_max_coord = EXACT_SAFE_COORD_LIMIT
    vector_safe_max_address = EXACT_SAFE_ADDRESS_LIMIT

    @property
    def name(self) -> str:
        return "szudzik"

    def _pair(self, x: int, y: int) -> int:
        u = x - 1
        v = y - 1
        if u < v:
            return v * v + u + 1
        return u * u + u + v + 1

    def _unpair(self, z: int) -> tuple[int, int]:
        # Shell m (0-indexed) holds w = z - 1 in m**2 .. m**2 + 2m.
        w = z - 1
        m = isqrt_exact(w)
        r = w - m * m  # 0 .. 2m, rank within the shell
        if r < m:
            # Column arm: u = r < m = v.
            return (r + 1, m + 1)
        # Row arm: u = m, v = r - m.
        return (m + 1, r - m + 1)

    # -- closed-form compactness ---------------------------------------

    def spread(self, n: int) -> int:
        """``S_E(n) = E(n, 1) = n**2 - n + 1``: the degenerate ``n x 1``
        column is the worst shape -- one address better than the
        square-shell family's ``n**2`` because the row arm ends one short
        of the shell's last address."""
        if n <= 0:
            from repro.errors import DomainError

            raise DomainError(f"n must be positive, got {n}")
        return n * n - n + 1

    def spread_for_shape(self, rows: int, cols: int) -> int:
        """Largest address in a ``rows x cols`` window: for tall-or-square
        windows the row arm's ``(rows, cols)`` corner dominates; for wide
        windows the column arm's ``(rows, cols)`` does."""
        if rows <= 0 or cols <= 0:
            from repro.errors import DomainError

            raise DomainError(f"shape must be positive, got {rows}x{cols}")
        if cols > rows:
            # Column arm of shell cols - 1: E = (cols-1)**2 + (rows-1).
            return (cols - 1) * (cols - 1) + rows
        # Row arm of shell rows - 1: E = (rows-1)**2 + (rows-1) + (cols-1).
        return (rows - 1) * (rows - 1) + rows + cols - 1

    # -- vectorized batch paths ----------------------------------------

    def _pair_kernel(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        u = x - 1
        v = y - 1
        return np.where(u < v, v * v + u, u * u + u + v) + 1

    def _unpair_kernel(self, z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        w = z - 1
        m = isqrt_kernel(w)
        r = w - m * m
        column = r < m
        x = np.where(column, r, m) + 1
        y = np.where(column, m, r - m) + 1
        return x, y

    def pair_array(self, xs, ys) -> np.ndarray:
        """Vectorized pairing: exact int64 kernel inside the coordinate
        window, exact scalar bignums outside it."""
        return self._pair_array_via(xs, ys, self._pair_kernel)

    def unpair_array(self, zs) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized inverse guarded by the exact-safe address window:
        addresses past the float64 mantissa take the scalar bignum path."""
        return self._unpair_array_via(zs, self._unpair_kernel)
