"""Binary-proportional pairing: rectangular shells of aspect ratio ``b``.

Szudzik's binary proportional pairing functions (arXiv:1809.06876)
generalize the Rosenberg--Strong square shells to *proportional* shells:
with ratio ``b``, shell ``m`` is the L-shaped difference between the
``(m+1) x b(m+1)`` and ``m x bm`` rectangles, so the enumeration stays
``b`` times wider than tall.  The payoff is the proportional analogue of
"binary perfect": if ``u < 2**j`` and ``v < b * 2**j`` then the output is
below ``b * 2**(2j)`` -- for ``b = 2**k``, inputs of ``j`` and ``j + k``
bits pair into at most ``2j + k`` bits, with no slack lost to
squaring the larger coordinate.

On the 0-indexed coordinates ``u = x - 1``, ``v = y - 1`` with
``m = max(u, v // b)``, this module uses the shell walk

    ``P(u, v) = b*m**2 + (v - b*m)*(m + 1) + u      if v >= b*m``
    ``P(u, v) = b*m**2 + b*(m + 1) + v              otherwise (u = m)``

(first the ``b`` new columns, each top to bottom, then the new row), and
shifts it to the paper's 1-indexed convention
(``pair(x, y) = P(x-1, y-1) + 1``).  Cumulative count through shell
``m - 1`` is ``b * m**2``, so the inverse needs one integer square root
of ``(z - 1) // b``.

This is the codec the sharded service wants: composing
``(shard_no, local_index)`` with ``b ~ local/shard`` charges at most
``~local**2 / b`` global addresses where a square shell charges
``local**2`` -- ``log2(b)`` bits of index width won back (measured by
the ``codec_shootout`` benchmark scenario).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import (
    EXACT_SAFE_ADDRESS_LIMIT,
    EXACT_SAFE_COORD_LIMIT,
    PairingFunction,
)
from repro.core.kernels import isqrt_kernel
from repro.errors import ConfigurationError
from repro.numbertheory.integers import isqrt_exact

__all__ = ["BinaryProportionalPairing"]


class BinaryProportionalPairing(PairingFunction):
    """Proportional-shell pairing with ratio ``b`` (``b = 1`` degenerates
    to square shells; powers of two are the "binary" family).

    >>> p = BinaryProportionalPairing(2)
    >>> p.table(3, 6)
    [[1, 2, 3, 5, 9, 12], [7, 8, 4, 6, 10, 13], [15, 16, 17, 18, 11, 14]]
    >>> p.unpair(14)
    (3, 6)
    >>> BinaryProportionalPairing(4).name
    'binprop-4'
    """

    closed_form_spread = True
    vector_safe_max_address = EXACT_SAFE_ADDRESS_LIMIT

    def __init__(self, ratio: int) -> None:
        if isinstance(ratio, bool) or not isinstance(ratio, int) or ratio < 1:
            raise ConfigurationError(
                f"ratio must be a positive int, got {ratio!r}"
            )
        self.ratio = ratio
        # The forward kernel's largest intermediate is b*(m+1)**2; keep
        # it under 2**61 by shrinking the coordinate window with b.
        self.vector_safe_max_coord = min(
            EXACT_SAFE_COORD_LIMIT, isqrt_exact(2**61 // ratio) - 1
        )

    @property
    def name(self) -> str:
        return f"binprop-{self.ratio}"

    def _pair(self, x: int, y: int) -> int:
        b = self.ratio
        u = x - 1
        v = y - 1
        m = max(u, v // b)
        if v >= b * m:
            # One of the b new columns, walked top to bottom.
            return b * m * m + (v - b * m) * (m + 1) + u + 1
        # The new row (u == m necessarily).
        return b * m * m + b * (m + 1) + v + 1

    def _unpair(self, z: int) -> tuple[int, int]:
        # Shells 0..m-1 hold b*m**2 addresses, shell m holds b*(2m+1);
        # so w = z - 1 lies in shell m = isqrt(w // b) exactly.
        b = self.ratio
        w = z - 1
        m = isqrt_exact(w // b)
        r = w - b * m * m  # 0 .. b*(2m+1) - 1, rank within the shell
        if r < b * (m + 1):
            # Column part: b columns of height m + 1.
            return (r % (m + 1) + 1, b * m + r // (m + 1) + 1)
        # Row part: u = m, v = 0 .. b*m - 1.
        return (m + 1, r - b * (m + 1) + 1)

    # -- closed-form compactness ---------------------------------------

    def spread(self, n: int) -> int:
        """``S_P(n) = P(n, 1) = b*(n**2 - n + 1) + 1`` for ``n >= 2``: the
        degenerate ``n x 1`` column is the worst shape by far -- the
        proportional shells buy density along ``y`` by charging a factor
        ``b`` against growth along ``x``.  (For ``n = 1`` the single cell
        sits at address 1.)"""
        if n <= 0:
            from repro.errors import DomainError

            raise DomainError(f"n must be positive, got {n}")
        if n == 1:
            return 1
        return self.ratio * (n * n - n + 1) + 1

    def spread_for_shape(self, rows: int, cols: int) -> int:
        """Largest address in a ``rows x cols`` window, from the outermost
        shell ``M = max(rows - 1, (cols - 1) // b)``: the maximum over the
        window's slice of the column part and of the row part."""
        if rows <= 0 or cols <= 0:
            from repro.errors import DomainError

            raise DomainError(f"shape must be positive, got {rows}x{cols}")
        b = self.ratio
        big_r = rows - 1
        big_c = cols - 1
        m = max(big_r, big_c // b)
        best = 0
        if big_c >= b * m:
            # Column part reaches the window: largest at the deepest
            # in-window column and row.
            v = min(big_c, b * (m + 1) - 1)
            u = min(big_r, m)
            best = b * m * m + (v - b * m) * (m + 1) + u + 1
        if big_r >= m and m >= 1:
            # Row part reaches the window (u = m <= rows - 1).
            v = min(big_c, b * m - 1)
            best = max(best, b * m * m + b * (m + 1) + v + 1)
        return best

    # -- vectorized batch paths ----------------------------------------

    def _pair_kernel(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        b = self.ratio
        u = x - 1
        v = y - 1
        m = np.maximum(u, v // b)
        column = v >= b * m
        return (
            b * m * m
            + np.where(column, (v - b * m) * (m + 1), b * (m + 1) + v - u)
            + u
            + 1
        )

    def _unpair_kernel(self, z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        b = self.ratio
        w = z - 1
        m = isqrt_kernel(w // b)
        r = w - b * m * m
        column = r < b * (m + 1)
        x = np.where(column, r % (m + 1), m) + 1
        y = np.where(column, b * m + r // (m + 1), r - b * (m + 1)) + 1
        return x, y

    def pair_array(self, xs, ys) -> np.ndarray:
        """Vectorized pairing: exact int64 kernel inside the (ratio-
        dependent) coordinate window, exact scalar bignums outside it."""
        return self._pair_array_via(xs, ys, self._pair_kernel)

    def unpair_array(self, zs) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized inverse guarded by the exact-safe address window:
        addresses past the float64 mantissa take the scalar bignum path."""
        return self._unpair_array_via(zs, self._unpair_kernel)
