"""Shared vectorized integer kernels for the exact-window fast paths.

Every shell-walking PF inverse starts the same way: recover the shell
index from an integer square root (or triangular root) of the address.
The scalar paths use :func:`repro.numbertheory.integers.isqrt_exact`
(pure bignum); the vectorized int64 kernels need the same value for a
whole array at once.  This module centralizes the one place where a
float estimate is allowed to appear: :func:`isqrt_kernel` computes
``floor(sqrt(n))`` elementwise via a float64 estimate plus an exact
integer repair, and every PF kernel derives its shell arithmetic from
that *exact* integer result -- so the per-PF inverse kernels contain no
float arithmetic at all.

Exactness domain: IEEE-754 ``sqrt`` is correctly rounded, so for
``0 <= n <= 2**57`` the estimate is within 1 of the true root (the
float64 conversion of ``n`` perturbs it by at most half an ulp, and the
root's own rounding error stays far below 1), and the +-1 repair below
lands exactly on ``floor(sqrt(n))``.  Callers stay well inside that:
address kernels are dispatched only for ``z <= 2**53 - 1``
(:data:`~repro.core.base.EXACT_SAFE_ADDRESS_LIMIT`), and the largest
derived argument is the diagonal kernel's ``8*(z-1) + 1 < 2**56``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["isqrt_kernel", "triangular_root_kernel"]


# reprolint: allow[R001] the sanctioned float estimate: correctly
# rounded sqrt + exact +-1 integer repair, provably exact for n <= 2**57
# (callers are gated by the exact-safe address window)
def isqrt_kernel(n: np.ndarray) -> np.ndarray:
    """Elementwise ``floor(sqrt(n))`` for int64 ``n >= 0`` inside the
    exact-safe window (see module docstring for the exactness argument).
    """
    r = np.sqrt(n.astype(np.float64)).astype(np.int64)
    r = np.where(r * r > n, r - 1, r)
    r = np.where((r + 1) * (r + 1) <= n, r + 1, r)
    return r


def triangular_root_kernel(w: np.ndarray) -> np.ndarray:
    """Elementwise triangular root: the largest ``t`` with
    ``t*(t+1)/2 <= w``, exactly, via ``(isqrt(8w + 1) - 1) // 2``.
    Sound for ``w <= 2**53``: the derived argument ``8w + 1`` stays
    below the 2**57 exactness bound of :func:`isqrt_kernel`."""
    return (isqrt_kernel(8 * w + 1) - 1) // 2
