"""The square-shell pairing function ``A_{1,1}`` of equation (3.3).

    ``A(x, y) = m**2 + m + y - x + 1``  where  ``m = max(x-1, y-1)``

``A_{1,1}`` walks the square shells ``max(x, y) = 1, 2, 3, ...``
counterclockwise: down column 1 of the shell's new row, then along the new
column (Figure 3).  Its charm (Section 3.2.1): it stores every square
``k x k`` array *perfectly* -- position ``(x, y)`` of a square array with
``n`` or fewer cells lands at an address ``<= n`` -- while remaining as
cheap to compute as the diagonal PF.

The single formula covers both arms of each shell: on the horizontal arm
(``x = m+1``) it reduces to ``m**2 + y``; on the vertical arm (``y = m+1``)
to ``m**2 + 2m + 2 - x``; the arms agree at the corner.

:class:`SquareShellPairingTwin` is the clockwise twin (exchange x and y).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import (
    EXACT_SAFE_ADDRESS_LIMIT,
    EXACT_SAFE_COORD_LIMIT,
    PairingFunction,
)
from repro.core.kernels import isqrt_kernel
from repro.numbertheory.integers import isqrt_exact

__all__ = ["SquareShellPairing", "SquareShellPairingTwin"]


class SquareShellPairing(PairingFunction):
    """The square-shell PF ``A_{1,1}`` (Figure 3), counterclockwise.

    >>> a = SquareShellPairing()
    >>> a.table(3, 3)
    [[1, 4, 9], [2, 3, 8], [5, 6, 7]]
    >>> a.unpair(7)
    (3, 3)
    """

    closed_form_spread = True
    vector_safe_max_coord = EXACT_SAFE_COORD_LIMIT
    vector_safe_max_address = EXACT_SAFE_ADDRESS_LIMIT

    @property
    def name(self) -> str:
        return "square-shell"

    def _pair(self, x: int, y: int) -> int:
        m = max(x - 1, y - 1)
        return m * m + m + y - x + 1

    def _unpair(self, z: int) -> tuple[int, int]:
        # Shell m holds addresses m**2 + 1 .. (m+1)**2.
        m = isqrt_exact(z - 1)
        r = z - m * m  # 1 .. 2m + 1, rank within the shell
        if r <= m + 1:
            # Horizontal arm: x = m + 1, address m**2 + y.
            return (m + 1, r)
        # Vertical arm: y = m + 1, address m**2 + 2m + 2 - x.
        return (2 * m + 2 - r, m + 1)

    # -- closed-form compactness ---------------------------------------

    def spread(self, n: int) -> int:
        """``S_{A11}(n) = A(1, n) = n**2``: the degenerate ``1 x n`` row is
        the worst shape.  On *square* shapes the spread is perfect
        (``spread_for_shape(k, k) = k**2``), which is the guarantee (3.2)
        with aspect ratio a = b = 1."""
        if n <= 0:
            from repro.errors import DomainError

            raise DomainError(f"n must be positive, got {n}")
        return n * n

    def spread_for_shape(self, rows: int, cols: int) -> int:
        """Largest address in a ``rows x cols`` window.

        The outermost shell is ``m = max(rows, cols) - 1``; within it the
        largest address in the window is attained at ``(1, cols)`` if the
        window is wide (``cols >= rows``, the counterclockwise walk ends on
        the vertical arm) and at the corner ``(rows, cols)`` otherwise.
        """
        if rows <= 0 or cols <= 0:
            from repro.errors import DomainError

            raise DomainError(f"shape must be positive, got {rows}x{cols}")
        if cols >= rows:
            return self._pair(1, cols)
        return self._pair(rows, cols)

    # -- vectorized batch paths ----------------------------------------

    def _pair_kernel(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        m = np.maximum(x - 1, y - 1)
        return m * m + m + y - x + 1

    def _unpair_kernel(self, z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        # Exact shell recovery via the shared isqrt kernel (the dispatcher
        # guarantees z <= EXACT_SAFE_ADDRESS_LIMIT, inside its domain).
        m = isqrt_kernel(z - 1)
        r = z - m * m
        horizontal = r <= m + 1
        x = np.where(horizontal, m + 1, 2 * m + 2 - r)
        y = np.where(horizontal, r, m + 1)
        return x, y

    def pair_array(self, xs, ys) -> np.ndarray:
        """Vectorized pairing: exact int64 kernel inside the coordinate
        window, exact scalar bignums outside it."""
        return self._pair_array_via(xs, ys, self._pair_kernel)

    def unpair_array(self, zs) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized inverse guarded by the exact-safe address window:
        addresses past the float64 mantissa take the scalar bignum path."""
        return self._unpair_array_via(zs, self._unpair_kernel)


class SquareShellPairingTwin(PairingFunction):
    """The clockwise twin of ``A_{1,1}`` (exchange ``x`` and ``y``): walks
    each square shell along the row first, then down the column.

    >>> t = SquareShellPairingTwin()
    >>> t.table(3, 3)
    [[1, 2, 5], [4, 3, 6], [9, 8, 7]]
    """

    closed_form_spread = True
    vector_safe_max_coord = EXACT_SAFE_COORD_LIMIT
    vector_safe_max_address = EXACT_SAFE_ADDRESS_LIMIT

    def __init__(self) -> None:
        self._base = SquareShellPairing()

    @property
    def name(self) -> str:
        return "square-shell-twin"

    def _pair(self, x: int, y: int) -> int:
        return self._base._pair(y, x)

    def _unpair(self, z: int) -> tuple[int, int]:
        x, y = self._base._unpair(z)
        return (y, x)

    def spread(self, n: int) -> int:
        return self._base.spread(n)

    def spread_for_shape(self, rows: int, cols: int) -> int:
        return self._base.spread_for_shape(cols, rows)

    def pair_array(self, xs, ys) -> np.ndarray:
        return self._base.pair_array(ys, xs)

    def unpair_array(self, zs) -> tuple[np.ndarray, np.ndarray]:
        x, y = self._base.unpair_array(zs)
        return y, x
