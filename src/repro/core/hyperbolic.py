"""The hyperbolic pairing function ``H`` of equation (3.4) -- the PF with
worst-case-optimal compactness (Section 3.2.3).

    ``H(x, y) = sum_{k=1}^{xy-1} delta(k)  +  rank of (x, y) among the
                2-part factorizations of xy, in reverse lexicographic order``

``H`` walks the hyperbolic shells ``xy = 1, 2, 3, ...``; shell ``c`` has
``delta(c)`` positions (one per divisor of ``c``), enumerated by descending
``x`` (Figure 4).  Its spread is exactly the summatory divisor function:

    ``S_H(n) = D(n) = Theta(n log n)``

and no PF can beat ``Omega(n log n)`` (the lattice-point argument of
Figure 5), so ``H`` is optimally compact up to constant factors among PFs
that must handle arrays of *arbitrary* aspect ratio.

Cost profile: ``pair`` is ``O(sqrt(xy))`` (a hyperbola-method sum plus a
divisor scan); ``unpair`` is ``O(sqrt z * log z)`` (binary search for the
shell, then a divisor enumeration).  An optional memoized divisor-summatory
cache accelerates repeated calls in sweeps.
"""

from __future__ import annotations

from repro.core.base import PairingFunction
from repro.numbertheory.divisor_sums import (
    divisor_summatory,
    smallest_n_with_summatory_at_least,
)
from repro.numbertheory.divisors import (
    divisor_count,
    divisor_list_sieve,
    divisors_descending,
)
from repro.numbertheory.integers import isqrt_exact

__all__ = ["HyperbolicPairing"]


class HyperbolicPairing(PairingFunction):
    """The hyperbolic PF ``H`` (Figure 4).

    Parameters
    ----------
    cache_size:
        Number of recent ``divisor_summatory`` results to memoize.  Sweeps
        that repeatedly touch nearby shells (e.g. spread computations) hit
        the cache heavily; set to 0 to disable.

    >>> h = HyperbolicPairing()
    >>> h.table(2, 4)
    [[1, 3, 5, 8], [2, 7, 13, 19]]
    >>> h.unpair(13)
    (2, 3)
    """

    closed_form_spread = True  # S_H(n) = D(n), an O(sqrt n) hyperbola sum

    def __init__(self, cache_size: int = 4096) -> None:
        self._cache: dict[int, int] = {}
        self._cache_size = max(0, int(cache_size))

    @property
    def name(self) -> str:
        return "hyperbolic"

    # ------------------------------------------------------------------

    def _summatory(self, n: int) -> int:
        """Memoized ``D(n)``."""
        if self._cache_size == 0:
            return divisor_summatory(n)
        cached = self._cache.get(n)
        if cached is None:
            cached = divisor_summatory(n)
            if len(self._cache) >= self._cache_size:
                # Cheap bulk eviction: drop everything.  The cache is a pure
                # performance aid; correctness never depends on its contents.
                self._cache.clear()
            self._cache[n] = cached
        return cached

    def _rank_in_shell(self, x: int, product: int) -> int:
        """1-based rank of the factorization ``(x, product/x)`` among the
        2-part factorizations of ``product`` in descending-``x`` order:
        the number of divisors of ``product`` that are ``>= x``."""
        count = 0
        root = isqrt_exact(product)
        for d in range(1, root + 1):
            if product % d == 0:
                if d >= x:
                    count += 1
                if product // d != d and product // d >= x:
                    count += 1
        return count

    def _pair(self, x: int, y: int) -> int:
        product = x * y
        return self._summatory(product - 1) + self._rank_in_shell(x, product)

    def _unpair(self, z: int) -> tuple[int, int]:
        shell = smallest_n_with_summatory_at_least(z)
        rank = z - self._summatory(shell - 1)
        ds = divisors_descending(shell)
        x = ds[rank - 1]
        return (x, shell // x)

    # -- closed-form compactness ---------------------------------------

    def spread(self, n: int) -> int:
        """``S_H(n) = D(n)`` exactly: the last position of shell ``n`` is
        the largest address over all positions with ``xy <= n``."""
        if n <= 0:
            from repro.errors import DomainError

            raise DomainError(f"n must be positive, got {n}")
        return self._summatory(n)

    def spread_for_shape(self, rows: int, cols: int) -> int:
        """Largest address in a ``rows x cols`` window: the far corner
        ``(rows, cols)`` lies on the window's largest shell
        ``xy = rows*cols``, and within that shell no other window position
        exists (any other factorization of ``rows*cols`` has a larger
        coordinate), so the max is ``H(rows, cols)``... *unless* another
        factorization ``(x, y)`` of ``rows*cols`` with ``x <= rows``,
        ``y <= cols`` and ``x < rows`` exists -- impossible since then
        ``y > cols``.  Hence exactly ``H(rows, cols)``."""
        if rows <= 0 or cols <= 0:
            from repro.errors import DomainError

            raise DomainError(f"shape must be positive, got {rows}x{cols}")
        return self._pair(rows, cols)

    # ------------------------------------------------------------------

    def table(self, rows: int, cols: int) -> list[list[int]]:
        """Batch-optimized Figure 1 sampling.

        The generic path costs ``O(sqrt(x*y))`` per cell (a hyperbola-method
        sum plus a divisor scan).  For a full window every product is at
        most ``rows * cols``, so one ``O(P log P)`` divisor-list sieve
        (``P = rows * cols``) plus a prefix sum of the divisor counts
        replaces all per-cell number theory: each cell then costs one
        binary search in its product's divisor list.

        Cross-checked against the scalar path in the test suite.
        """
        from bisect import bisect_left

        from repro.errors import DomainError

        if rows <= 0 or cols <= 0:
            raise DomainError(f"table shape must be positive, got {rows}x{cols}")
        limit = rows * cols
        div_lists = divisor_list_sieve(limit)
        # prefix[k] = D(k) = sum_{j<=k} delta(j).
        prefix = [0] * (limit + 1)
        for k in range(1, limit + 1):
            prefix[k] = prefix[k - 1] + len(div_lists[k])
        out: list[list[int]] = []
        for x in range(1, rows + 1):
            row: list[int] = []
            for y in range(1, cols + 1):
                product = x * y
                ds = div_lists[product]
                # rank among descending divisors = #divisors >= x.
                rank = len(ds) - bisect_left(ds, x)
                row.append(prefix[product - 1] + rank)
            out.append(row)
        return out

    def shell_of(self, z: int) -> int:
        """The hyperbolic shell (the product ``x * y``) containing address
        *z* -- a convenience for rendering shell-highlighted tables.

        >>> HyperbolicPairing().shell_of(13)
        6
        """
        from repro.core.base import validate_address

        z = validate_address(z)
        return smallest_n_with_summatory_at_least(z)

    def shell_size(self, c: int) -> int:
        """Number of positions on shell ``xy = c``: ``delta(c)``."""
        return divisor_count(c)
