"""The Cauchy-Cantor diagonal pairing function ``D`` of equation (2.1).

    ``D(x, y) = C(x + y - 1, 2) + y = (x+y-1)(x+y-2)/2 + y``

``D`` walks the diagonal shells ``x + y = 2, 3, 4, ...`` upward (increasing
``y``); Figure 2 samples it on an 8 x 8 window.  It is the computationally
simplest PF -- a quadratic polynomial -- and (Fueter-Polya) the *only*
quadratic polynomial PF up to exchanging ``x`` and ``y``.

The inverse follows Davis's explicit recipe [3]: the shell of address ``z``
is recovered from the triangular root of ``z - 1``.

Both orientations are provided: :class:`DiagonalPairing` (the paper's
``D``) and its "twin" :class:`DiagonalPairingTwin` with ``x`` and ``y``
exchanged.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import (
    EXACT_SAFE_ADDRESS_LIMIT,
    EXACT_SAFE_COORD_LIMIT,
    PairingFunction,
)
from repro.core.kernels import triangular_root_kernel
from repro.numbertheory.integers import triangular, triangular_root

__all__ = ["DiagonalPairing", "DiagonalPairingTwin"]


class DiagonalPairing(PairingFunction):
    """The diagonal PF ``D(x, y) = (x+y-1)(x+y-2)/2 + y`` (Figure 2).

    >>> d = DiagonalPairing()
    >>> d.pair(1, 1), d.pair(2, 1), d.pair(1, 2), d.pair(3, 1)
    (1, 2, 3, 4)
    >>> d.unpair(10)
    (1, 4)
    """

    closed_form_spread = True
    vector_safe_max_coord = EXACT_SAFE_COORD_LIMIT
    vector_safe_max_address = EXACT_SAFE_ADDRESS_LIMIT

    @property
    def name(self) -> str:
        return "diagonal"

    def _pair(self, x: int, y: int) -> int:
        s = x + y - 1
        return s * (s - 1) // 2 + y

    def _unpair(self, z: int) -> tuple[int, int]:
        # Shell x + y = s + 1 holds addresses triangular(s-1)+1 .. triangular(s).
        s = triangular_root(z - 1) + 1
        y = z - triangular(s - 1)
        x = s + 1 - y
        return (x, y)

    # -- closed-form compactness ---------------------------------------

    def spread(self, n: int) -> int:
        """``S_D(n) = D(1, n) = (n**2 + n) / 2``: among shapes with ``<= n``
        cells, the degenerate ``1 x n`` row is the worst (Section 3.2 --
        "even worse (percentage-wise), D spreads the 1 x n array over more
        than n**2/2 addresses")."""
        if n <= 0:
            from repro.errors import DomainError

            raise DomainError(f"n must be positive, got {n}")
        return n * (n + 1) // 2

    def spread_for_shape(self, rows: int, cols: int) -> int:
        """Largest address in a ``rows x cols`` window: the far corner's
        shell dominates, and within the last shell the largest admissible
        ``y`` (namely ``cols``) gives the max: ``D(rows, cols)``."""
        if rows <= 0 or cols <= 0:
            from repro.errors import DomainError

            raise DomainError(f"shape must be positive, got {rows}x{cols}")
        return self._pair(rows, cols)

    # -- vectorized batch paths ----------------------------------------

    def _pair_kernel(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        s = x + y - 1
        return s * (s - 1) // 2 + y

    def _unpair_kernel(self, z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        w = z - 1
        # Exact triangular root via the shared isqrt kernel (the
        # dispatcher guarantees z <= EXACT_SAFE_ADDRESS_LIMIT, so the
        # derived 8w + 1 stays inside the kernel's exactness domain).
        t = triangular_root_kernel(w)
        s = t + 1
        y = z - (s - 1) * s // 2
        x = s + 1 - y
        return x, y

    def pair_array(self, xs, ys) -> np.ndarray:
        """Vectorized pairing: exact int64 kernel inside the coordinate
        window, exact scalar bignums outside it."""
        return self._pair_array_via(xs, ys, self._pair_kernel)

    def unpair_array(self, zs) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized inverse via a float triangular-root estimate plus
        exact integer repair, guarded by the exact-safe address window:
        addresses past the float64 mantissa take the scalar bignum path."""
        return self._unpair_array_via(zs, self._unpair_kernel)


class DiagonalPairingTwin(PairingFunction):
    """The twin of ``D`` with ``x`` and ``y`` exchanged: walks each diagonal
    shell in the opposite direction (increasing ``x``).

    >>> t = DiagonalPairingTwin()
    >>> t.pair(1, 1), t.pair(1, 2), t.pair(2, 1)
    (1, 2, 3)
    """

    closed_form_spread = True
    vector_safe_max_coord = EXACT_SAFE_COORD_LIMIT
    vector_safe_max_address = EXACT_SAFE_ADDRESS_LIMIT

    def __init__(self) -> None:
        self._base = DiagonalPairing()

    @property
    def name(self) -> str:
        return "diagonal-twin"

    def _pair(self, x: int, y: int) -> int:
        return self._base._pair(y, x)

    def _unpair(self, z: int) -> tuple[int, int]:
        x, y = self._base._unpair(z)
        return (y, x)

    def spread(self, n: int) -> int:
        return self._base.spread(n)

    def spread_for_shape(self, rows: int, cols: int) -> int:
        return self._base.spread_for_shape(cols, rows)

    def pair_array(self, xs, ys) -> np.ndarray:
        return self._base.pair_array(ys, xs)

    def unpair_array(self, zs) -> tuple[np.ndarray, np.ndarray]:
        x, y = self._base.unpair_array(zs)
        return y, x
