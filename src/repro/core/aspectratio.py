"""Fixed-aspect-ratio pairing functions ``A_{a,b}`` (Section 3.2.1).

For a fixed aspect ratio ``<a, b>``, shell ``k`` comprises the positions of
the ``a*k x b*k`` array that are not in the ``a*(k-1) x b*(k-1)`` array.
Enumerating shell by shell yields a PF that manages storage *perfectly* for
arrays of that ratio -- guarantee (3.2):

    every position of an ``a*k x b*k`` array with ``n`` or fewer cells is
    mapped to an address ``<= n``.

Within each shell we use an explicit L-shaped order that keeps both ``pair``
and ``unpair`` O(1) arithmetic:

* first the *right strip* -- the ``b`` new columns ``y in (b(k-1), bk]``,
  each of full height ``a*k``, in column-major order (``a*b*k`` positions);
* then the *bottom strip* -- the ``a`` new rows ``x in (a(k-1), ak]``,
  restricted to the old columns ``y <= b(k-1)``, in row-major order
  (``a*b*(k-1)`` positions).

Shell ``k`` therefore holds ``a*b*(2k-1)`` positions, and the cumulative
count after shell ``k`` is ``a*b*k**2`` -- exactly the cell count of the
``ak x bk`` array, which is what makes (3.2) hold with equality.

``SquareShellPairing`` (a = b = 1, counterclockwise order) is a sibling of
``AspectRatioPairing(1, 1)``; they differ only in the in-shell order, which
the ablation benchmark quantifies.
"""

from __future__ import annotations

from repro.core.base import PairingFunction
from repro.errors import ConfigurationError, DomainError
from repro.numbertheory.integers import ceil_div, isqrt_exact

__all__ = ["AspectRatioPairing"]


class AspectRatioPairing(PairingFunction):
    """The PF ``A_{a,b}`` favoring arrays of aspect ratio ``<a, b>``.

    >>> p = AspectRatioPairing(1, 2)   # favors 1k x 2k arrays
    >>> p.spread_for_shape(3, 6)       # a 3x6 array (k=3): perfect
    18
    >>> p.check_roundtrip_window(6, 6)
    """

    def __init__(self, a: int, b: int) -> None:
        if isinstance(a, bool) or not isinstance(a, int) or a <= 0:
            raise ConfigurationError(f"aspect ratio a must be a positive int, got {a!r}")
        if isinstance(b, bool) or not isinstance(b, int) or b <= 0:
            raise ConfigurationError(f"aspect ratio b must be a positive int, got {b!r}")
        self.a = a
        self.b = b

    @property
    def name(self) -> str:
        return f"aspect-{self.a}x{self.b}"

    # ------------------------------------------------------------------

    def shell_of(self, x: int, y: int) -> int:
        """The shell index ``k = max(ceil(x/a), ceil(y/b))`` of position
        ``(x, y)`` -- the smallest ``k`` whose ``ak x bk`` array contains it."""
        x, y = int(x), int(y)
        if x <= 0 or y <= 0:
            raise DomainError(f"coordinates must be positive, got ({x}, {y})")
        return max(ceil_div(x, self.a), ceil_div(y, self.b))

    def shell_size(self, k: int) -> int:
        """Positions on shell ``k``: ``a*b*(2k - 1)``."""
        if k <= 0:
            raise DomainError(f"shell index must be positive, got {k}")
        return self.a * self.b * (2 * k - 1)

    def cumulative_through(self, k: int) -> int:
        """Positions on shells ``1..k``: ``a*b*k**2`` (the ``ak x bk`` cell
        count -- the identity behind guarantee (3.2))."""
        if k < 0:
            raise DomainError(f"shell index must be nonnegative, got {k}")
        return self.a * self.b * k * k

    # ------------------------------------------------------------------

    def _pair(self, x: int, y: int) -> int:
        a, b = self.a, self.b
        k = max(ceil_div(x, a), ceil_div(y, b))
        base = a * b * (k - 1) * (k - 1)
        if y > b * (k - 1):
            # Right strip: column-major over the b new columns, height a*k.
            col = y - b * (k - 1) - 1  # 0-based new-column index
            return base + col * (a * k) + x
        # Bottom strip: row-major over the a new rows, width b*(k-1).
        row = x - a * (k - 1) - 1  # 0-based new-row index
        return base + a * b * k + row * (b * (k - 1)) + y

    def _unpair(self, z: int) -> tuple[int, int]:
        a, b = self.a, self.b
        # Smallest k with a*b*k**2 >= z.
        k = isqrt_exact((z - 1) // (a * b)) + 1
        while a * b * (k - 1) * (k - 1) >= z:  # pragma: no cover - exact
            k -= 1
        r = z - a * b * (k - 1) * (k - 1)  # 1-based rank within shell k
        right_strip = a * b * k
        if r <= right_strip:
            col = (r - 1) // (a * k)
            x = (r - 1) % (a * k) + 1
            y = b * (k - 1) + 1 + col
            return (x, y)
        r2 = r - right_strip
        width = b * (k - 1)
        row = (r2 - 1) // width
        y = (r2 - 1) % width + 1
        x = a * (k - 1) + 1 + row
        return (x, y)

    # -- compactness ------------------------------------------------------

    def spread_favored(self, n: int) -> int:
        """Spread restricted to the favored shapes -- definition (3.2):
        ``max{A(x, y) : x <= ak, y <= bk, a*b*k**2 <= n}``.  Equals the
        number of cells of the largest favored array that fits, i.e.
        ``a*b*k**2`` for ``k = floor(sqrt(n / (a*b)))`` -- *perfect* storage
        management.

        >>> AspectRatioPairing(1, 1).spread_favored(10)
        9
        """
        if isinstance(n, bool) or not isinstance(n, int) or n <= 0:
            raise DomainError(f"n must be a positive int, got {n!r}")
        k = isqrt_exact(n // (self.a * self.b))
        if k == 0:
            return 0
        return self.cumulative_through(k)
