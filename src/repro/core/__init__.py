"""Core pairing functions: the paper's primary contribution.

This subpackage holds the PF framework (:mod:`~repro.core.base`), the
closed-form PFs of Sections 2-3 (diagonal, square-shell, hyperbolic,
aspect-ratio), the dovetail combinator, the executable Procedure
PF-Constructor (:mod:`~repro.core.shells`), the compactness toolkit
(:mod:`~repro.core.spread`), and the name registry.

The additive PFs of Section 4 live in :mod:`repro.apf` (they subclass the
same :class:`~repro.core.base.PairingFunction` ABC).
"""

from __future__ import annotations

from repro.core.base import PairingFunction, StorageMapping
from repro.core.diagonal import DiagonalPairing, DiagonalPairingTwin
from repro.core.squareshell import SquareShellPairing, SquareShellPairingTwin
from repro.core.hyperbolic import HyperbolicPairing
from repro.core.aspectratio import AspectRatioPairing
from repro.core.szudzik import SzudzikElegantPairing
from repro.core.rosenbergstrong import RosenbergStrongPairing
from repro.core.binaryproportional import BinaryProportionalPairing
from repro.core.dovetail import DovetailMapping
from repro.core.shells import (
    ShellOrder,
    ShellPartition,
    DiagonalShells,
    SquareShells,
    HyperbolicShells,
    AspectRatioShells,
    ShellConstructedPairing,
)
from repro.core.spread import (
    SpreadPoint,
    SpreadCurve,
    spread_curve,
    compare_spreads,
    utilization,
    worst_shape,
)
from repro.core.locality import (
    JumpProfile,
    block_span,
    col_jump_profile,
    row_jump_profile,
)
from repro.core.ndim import IteratedPairing
from repro.core.registry import available_names, get_pairing, register

__all__ = [
    "PairingFunction",
    "StorageMapping",
    "DiagonalPairing",
    "DiagonalPairingTwin",
    "SquareShellPairing",
    "SquareShellPairingTwin",
    "HyperbolicPairing",
    "AspectRatioPairing",
    "SzudzikElegantPairing",
    "RosenbergStrongPairing",
    "BinaryProportionalPairing",
    "DovetailMapping",
    "ShellOrder",
    "ShellPartition",
    "DiagonalShells",
    "SquareShells",
    "HyperbolicShells",
    "AspectRatioShells",
    "ShellConstructedPairing",
    "IteratedPairing",
    "JumpProfile",
    "block_span",
    "col_jump_profile",
    "row_jump_profile",
    "SpreadPoint",
    "SpreadCurve",
    "spread_curve",
    "compare_spreads",
    "utilization",
    "worst_shape",
    "available_names",
    "get_pairing",
    "register",
]
