"""Batch evaluation entry points: ``pair_many`` / ``unpair_many`` /
``spread_many``.

These are the functions the array and web-computing layers call on their
hot paths.  Contract: **exactness first, speed second** -- every function
returns bit-identical results to the scalar bignum loop, and dispatches to
the NumPy int64 kernels only for inputs inside the mapping's declared
exact-safe window (:data:`~repro.core.base.EXACT_SAFE_ADDRESS_LIMIT` /
:data:`~repro.core.base.EXACT_SAFE_COORD_LIMIT`).  Inputs outside the
window -- bignum addresses past the float64 mantissa, coordinates whose
squares would overflow int64, exponentially-growing APFs with no safe
window at all -- silently take the exact scalar path; mixed batches are
split element-wise.

``spread_many`` routes through the mapping's per-instance
:class:`~repro.perf.spread_cache.SpreadCache`, turning a grid sweep from
``sum_i Theta(n_i log n_i)`` into one incremental enumeration of the
largest size (plus closed-form short-circuits where subclasses declare
them).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.base import StorageMapping
from repro.errors import ConfigurationError

__all__ = [
    "pair_many",
    "unpair_many",
    "spread_many",
    "vectorization_window",
]


def _require_mapping(mapping: StorageMapping) -> StorageMapping:
    if not isinstance(mapping, StorageMapping):
        raise ConfigurationError(
            f"expected a StorageMapping, got {type(mapping).__name__}"
        )
    return mapping


def pair_many(
    mapping: StorageMapping,
    xs: Sequence[int] | np.ndarray,
    ys: Sequence[int] | np.ndarray,
) -> np.ndarray:
    """``mapping.pair`` over parallel (broadcastable) coordinate batches.

    Vectorized int64 kernel when every coordinate fits the mapping's
    exact-safe window; exact scalar bignum loop otherwise.  Always agrees
    with ``[mapping.pair(x, y) for x, y in zip(xs, ys)]``.

    >>> from repro.core.diagonal import DiagonalPairing
    >>> pair_many(DiagonalPairing(), [1, 2, 3], [1, 1, 1]).tolist()
    [1, 2, 4]
    """
    return _require_mapping(mapping).pair_array(xs, ys)


def unpair_many(
    mapping: StorageMapping, zs: Sequence[int] | np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``mapping.unpair`` over an address batch; returns ``(xs, ys)``.

    In-window batches stay on the int64 kernel; batches containing any
    address past the exact-safe limit are split element-wise, with the
    stragglers running the scalar bignum inverse.  Always agrees with
    ``[mapping.unpair(z) for z in zs]``.

    >>> from repro.core.diagonal import DiagonalPairing
    >>> xs, ys = unpair_many(DiagonalPairing(), [1, 2, 3, 4])
    >>> list(zip(xs.tolist(), ys.tolist()))
    [(1, 1), (2, 1), (1, 2), (3, 1)]
    """
    return _require_mapping(mapping).unpair_array(zs)


def spread_many(mapping: StorageMapping, ns: Sequence[int]) -> list[int]:
    """``mapping.spread`` over a grid of sizes, sharing enumeration work
    across the grid via the mapping's :class:`SpreadCache`.

    Identical values to ``[mapping.spread(n) for n in ns]``; for mappings
    without a closed-form spread the whole grid costs one incremental
    enumeration of ``max(ns)`` instead of a fresh ``Theta(n log n)``
    enumeration per point.

    >>> from repro.core.aspectratio import AspectRatioPairing
    >>> spread_many(AspectRatioPairing(1, 1), [4, 9, 4])
    [14, 74, 14]
    """
    return _require_mapping(mapping).spread_cache().spread_many(ns)


def vectorization_window(mapping: StorageMapping) -> dict[str, int | None]:
    """The mapping's declared exact-safe window (``None`` = no vectorized
    kernel; that side always runs the scalar bignum path)."""
    _require_mapping(mapping)
    return {
        "max_coord": mapping.vector_safe_max_coord,
        "max_address": mapping.vector_safe_max_address,
    }
