"""The performance layer: memoized spread evaluation and batch kernels.

The paper's thesis is that a pairing function is only useful if you can
afford to evaluate it on *every* array access and *every* task
attribution.  This subpackage is the reproduction's answer on the systems
side:

* :mod:`~repro.perf.spread_cache` -- :class:`SpreadCache`, memoized +
  incremental spread evaluation for any storage mapping (anchor-based
  band enumeration; closed-form short-circuits where declared);
* :mod:`~repro.perf.batch` -- ``pair_many`` / ``unpair_many`` /
  ``spread_many``, the exact-safe-window dispatchers between the NumPy
  int64 kernels and the scalar bignum paths.

Regression tracking lives in ``benchmarks/bench_runner.py``, which runs
the evaluation-speed and spread-compactness scenarios and appends the
results to ``benchmarks/BENCH_eval.json``.
"""

from __future__ import annotations

from repro.perf.batch import (
    pair_many,
    spread_many,
    unpair_many,
    vectorization_window,
)
from repro.perf.spread_cache import SpreadCache

__all__ = [
    "SpreadCache",
    "pair_many",
    "unpair_many",
    "spread_many",
    "vectorization_window",
]
