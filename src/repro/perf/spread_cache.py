"""Memoized + incremental spread evaluation (the perf layer's cache tier).

The generic :meth:`~repro.core.base.StorageMapping.spread` re-enumerates
all ``Theta(n log n)`` lattice points under ``xy = n`` on every call, so a
sweep over a grid ``n_1 < n_2 < ... < n_k`` pays
``sum_i Theta(n_i log n_i)`` -- most of it spent re-visiting points already
seen at smaller sizes.  :class:`SpreadCache` exploits two structural facts:

* ``S(n) = max(S(n'), max{pair(x, y) : n' < xy <= n})`` for any ``n' < n``
  -- the spread extends *incrementally* from any previously computed
  anchor, enumerating only the lattice points in the hyperbolic band
  ``n' < xy <= n``;
* mappings that declare ``closed_form_spread = True`` (diagonal,
  square-shell, hyperbolic) have an O(1)/O(sqrt n) ``spread`` that should
  simply be delegated to and memoized.

Every computed value is memoized and becomes an anchor, so out-of-order
and repeated queries are served from the nearest anchor below the query
(or the dict, for exact repeats).
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Sequence

from repro.core.base import StorageMapping
from repro.errors import ConfigurationError, DomainError

__all__ = ["SpreadCache"]


class SpreadCache:
    """Memoized, incrementally extended spread evaluation for one mapping.

    Parameters
    ----------
    mapping:
        The :class:`~repro.core.base.StorageMapping` to evaluate.
    prefer_closed_form:
        When the mapping declares ``closed_form_spread``, delegate to its
        own ``spread`` (and just memoize).  Set ``False`` to force
        incremental lattice enumeration even then -- useful for
        cross-checking a closed form against the definition.

    >>> from repro.core.aspectratio import AspectRatioPairing
    >>> cache = SpreadCache(AspectRatioPairing(1, 2))
    >>> [cache.spread(n) for n in (8, 16, 8)]
    [115, 483, 115]
    >>> cache.stats()["misses"]
    2
    """

    def __init__(self, mapping: StorageMapping, prefer_closed_form: bool = True) -> None:
        if not isinstance(mapping, StorageMapping):
            raise ConfigurationError(
                f"SpreadCache needs a StorageMapping, got {type(mapping).__name__}"
            )
        self.mapping = mapping
        self.closed_form = bool(prefer_closed_form and mapping.closed_form_spread)
        self._memo: dict[int, int] = {}
        self._anchors: list[int] = []  # sorted keys of _memo
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------

    def spread(self, n: int) -> int:
        """``S(n)``, memoized; cache misses extend from the largest
        previously computed size below *n* instead of starting over."""
        if isinstance(n, bool) or not isinstance(n, int) or n <= 0:
            raise DomainError(f"n must be a positive int, got {n!r}")
        cached = self._memo.get(n)
        if cached is not None:
            self._hits += 1
            return cached
        self._misses += 1
        if self.closed_form:
            value = self.mapping.spread(n)
        else:
            value = self._extend_to(n)
        self._memo[n] = value
        insort(self._anchors, n)
        return value

    def spread_many(self, ns: Sequence[int]) -> list[int]:
        """Spread at every size in *ns* (any order, duplicates fine),
        evaluated ascending so each size extends the previous one."""
        for n in ns:
            if isinstance(n, bool) or not isinstance(n, int) or n <= 0:
                raise DomainError(f"each n must be a positive int, got {n!r}")
        for n in sorted(set(ns)):
            self.spread(n)
        return [self._memo[n] for n in ns]

    # ------------------------------------------------------------------

    def _extend_to(self, n: int) -> int:
        """Exact ``S(n)`` by enumerating only the band ``lo < xy <= n``
        above the nearest anchor ``lo`` (``lo = 0``: the full lattice)."""
        i = bisect_right(self._anchors, n) - 1
        if i >= 0:
            lo = self._anchors[i]
            best = self._memo[lo]
        else:
            lo = 0
            best = 0
        pair = self.mapping._pair
        for x in range(1, n + 1):
            hi_w = n // x
            lo_w = lo // x
            for y in range(lo_w + 1, hi_w + 1):
                z = pair(x, y)
                if z > best:
                    best = z
        return best

    # ------------------------------------------------------------------

    def stats(self) -> dict[str, int | bool]:
        """Cache effectiveness counters (a pure observability hook)."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "anchors": len(self._anchors),
            "closed_form": self.closed_form,
        }

    def clear(self) -> None:
        self._memo.clear()
        self._anchors.clear()
        self._hits = 0
        self._misses = 0

    def __repr__(self) -> str:
        return (
            f"<SpreadCache {self.mapping.name!r} anchors={len(self._anchors)} "
            f"hits={self._hits} misses={self._misses}>"
        )
