"""``[tool.reprolint]`` configuration.

The analyzer is generic; everything project-specific -- which modules are
*exact*, which must replay deterministically, the import DAG, the private
attributes each module owns, the event-publishing classes -- lives in
``pyproject.toml``::

    [tool.reprolint]

    [tool.reprolint.r001]
    exact-modules = ["repro.core.*", "repro.apf.*"]

    [tool.reprolint.r002]
    deterministic-modules = ["repro.webcompute.*"]

    [tool.reprolint.r004]
    private-attrs = { "_records" = "repro.webcompute.ledger" }
    [tool.reprolint.r004.allowed-imports]
    "repro.core" = ["repro.errors", "repro.numbertheory", "repro.core"]

    [tool.reprolint.r005]
    event-classes = ["AllocationEngine"]

    [[tool.reprolint.r006.grammar]]
    name = "shard-ops"
    emit-functions = ["repro.webcompute.sharding._ShardClient._op"]
    handle-functions = ["repro.webcompute.shardworker._apply_live_op"]
    replay-functions = ["repro.webcompute.recovery.apply_op"]
    pure-tags = ["validate_register"]

    [tool.reprolint.per-module]
    "repro.core.spread" = { disable = ["R001"] }

Module matching is ``fnmatch`` on dotted names (``repro.core.*`` also
matches ``repro.core`` itself, so one glob covers a package and its
``__init__``).  ``allowed-imports`` keys match by *longest dotted
prefix*, so a single module can carve out a wider allowance than its
package (the registry is the one core module allowed to import the APF
catalogue it registers).
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Any

__all__ = [
    "ReprolintConfig",
    "GrammarSpec",
    "ConfigError",
    "load_config",
    "find_pyproject",
]

ALL_RULES = ("R001", "R002", "R003", "R004", "R005", "R006")


class ConfigError(Exception):
    """Malformed ``[tool.reprolint]`` content."""


def _module_matches(module: str, patterns: tuple[str, ...]) -> bool:
    for pattern in patterns:
        if fnmatchcase(module, pattern):
            return True
        # "pkg.*" also covers "pkg" itself: declaring a package exact
        # should include its __init__ module.
        if pattern.endswith(".*") and module == pattern[:-2]:
            return True
    return False


def _dotted_prefix(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


@dataclass(frozen=True, slots=True)
class GrammarSpec:
    """One R006 message grammar: the functions whose call sites *emit*
    tagged ops (``["tick", ...]`` list literals), the dispatcher that
    *handles* them live (``kind == "tick"`` branches), the dispatcher
    that *replays* them from the journal, and the tags sanctioned to be
    live-only (``pure-tags``: read-only ops with no journal footprint).
    Function refs are fully qualified (``pkg.mod.Cls.method`` /
    ``pkg.mod.func``)."""

    name: str
    emit: tuple[str, ...] = ()
    handle: tuple[str, ...] = ()
    replay: tuple[str, ...] = ()
    pure: tuple[str, ...] = ()


@dataclass(frozen=True, slots=True)
class ReprolintConfig:
    """The parsed ``[tool.reprolint]`` table (all fields optional; an
    empty config runs only the project-agnostic checks)."""

    #: R001 applies to modules matching these globs.
    exact_modules: tuple[str, ...] = ()
    #: R002 applies to modules matching these globs.
    deterministic_modules: tuple[str, ...] = ()
    #: R004 import DAG: dotted-prefix -> allowed internal import prefixes.
    allowed_imports: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: R004: the root package whose imports the DAG constrains.
    internal_root: str = "repro"
    #: R004 private state: attribute name -> owning module.
    private_attrs: dict[str, str] = field(default_factory=dict)
    #: R005 applies to classes with these names.
    event_classes: tuple[str, ...] = ()
    #: Per-module rule disables: glob -> rule codes.
    per_module_disable: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: R006 message grammars (no grammars -> the rule is a no-op).
    grammars: tuple[GrammarSpec, ...] = ()

    # ------------------------------------------------------------------

    def rules_for(self, module: str) -> frozenset[str]:
        """The rule codes enabled for *module* after per-module disables."""
        disabled: set[str] = set()
        for pattern, rules in self.per_module_disable.items():
            if _module_matches(module, (pattern,)):
                disabled.update(rules)
        return frozenset(r for r in ALL_RULES if r not in disabled)

    def is_exact(self, module: str) -> bool:
        return _module_matches(module, self.exact_modules)

    def is_deterministic(self, module: str) -> bool:
        return _module_matches(module, self.deterministic_modules)

    def import_allowance(self, module: str) -> tuple[str, ...] | None:
        """The allowed internal-import prefixes for *module*: the value
        under its longest matching dotted-prefix key, or ``None`` when no
        key constrains it."""
        best: str | None = None
        for prefix in self.allowed_imports:
            if _dotted_prefix(module, prefix):
                if best is None or len(prefix) > len(best):
                    best = prefix
        return None if best is None else self.allowed_imports[best]

    # ------------------------------------------------------------------

    @classmethod
    def from_mapping(cls, data: dict[str, Any]) -> "ReprolintConfig":
        """Build from the ``[tool.reprolint]`` dict (already parsed)."""

        def str_list(value: Any, where: str) -> tuple[str, ...]:
            if not isinstance(value, list) or not all(
                isinstance(v, str) for v in value
            ):
                raise ConfigError(f"{where} must be a list of strings")
            return tuple(value)

        r001 = data.get("r001", {})
        r002 = data.get("r002", {})
        r004 = data.get("r004", {})
        r005 = data.get("r005", {})
        r006 = data.get("r006", {})
        for name, table in (
            ("r001", r001),
            ("r002", r002),
            ("r004", r004),
            ("r005", r005),
            ("r006", r006),
        ):
            if not isinstance(table, dict):
                raise ConfigError(f"[tool.reprolint.{name}] must be a table")

        grammars_raw = r006.get("grammar", [])
        if not isinstance(grammars_raw, list):
            raise ConfigError("r006.grammar must be an array of tables")
        grammars: list[GrammarSpec] = []
        for index, entry in enumerate(grammars_raw):
            where = f"r006.grammar[{index}]"
            if not isinstance(entry, dict):
                raise ConfigError(f"{where} must be a table")
            grammar_name = entry.get("name", "")
            if not isinstance(grammar_name, str) or not grammar_name:
                raise ConfigError(f"{where}.name must be a non-empty string")
            grammars.append(
                GrammarSpec(
                    name=grammar_name,
                    emit=str_list(
                        entry.get("emit-functions", []), f"{where}.emit-functions"
                    ),
                    handle=str_list(
                        entry.get("handle-functions", []), f"{where}.handle-functions"
                    ),
                    replay=str_list(
                        entry.get("replay-functions", []), f"{where}.replay-functions"
                    ),
                    pure=str_list(
                        entry.get("pure-tags", []), f"{where}.pure-tags"
                    ),
                )
            )

        allowed_raw = r004.get("allowed-imports", {})
        if not isinstance(allowed_raw, dict):
            raise ConfigError("r004.allowed-imports must be a table")
        allowed = {
            key: str_list(value, f"r004.allowed-imports.{key}")
            for key, value in allowed_raw.items()
        }

        private_raw = r004.get("private-attrs", {})
        if not isinstance(private_raw, dict) or not all(
            isinstance(v, str) for v in private_raw.values()
        ):
            raise ConfigError("r004.private-attrs must map attr -> owning module")

        per_module_raw = data.get("per-module", {})
        if not isinstance(per_module_raw, dict):
            raise ConfigError("[tool.reprolint.per-module] must be a table")
        per_module: dict[str, tuple[str, ...]] = {}
        for pattern, entry in per_module_raw.items():
            if not isinstance(entry, dict):
                raise ConfigError(f"per-module.{pattern} must be a table")
            codes = str_list(entry.get("disable", []), f"per-module.{pattern}.disable")
            bad = [c for c in codes if c.upper() not in ALL_RULES]
            if bad:
                raise ConfigError(
                    f"per-module.{pattern}.disable names unknown rules {bad}"
                )
            per_module[pattern] = tuple(c.upper() for c in codes)

        internal_root = r004.get("internal-root", "repro")
        if not isinstance(internal_root, str):
            raise ConfigError("r004.internal-root must be a string")

        return cls(
            exact_modules=str_list(
                r001.get("exact-modules", []), "r001.exact-modules"
            ),
            deterministic_modules=str_list(
                r002.get("deterministic-modules", []), "r002.deterministic-modules"
            ),
            allowed_imports=allowed,
            internal_root=internal_root,
            private_attrs=dict(private_raw),
            event_classes=str_list(
                r005.get("event-classes", []), "r005.event-classes"
            ),
            per_module_disable=per_module,
            grammars=tuple(grammars),
        )


def find_pyproject(start: Path) -> Path | None:
    """The nearest ``pyproject.toml`` at or above *start*."""
    probe = start.resolve()
    if probe.is_file():
        probe = probe.parent
    for directory in (probe, *probe.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def load_config(start: Path) -> tuple[ReprolintConfig, Path | None]:
    """The config governing *start*: the ``[tool.reprolint]`` table of the
    nearest ``pyproject.toml``, or the empty config when there is none.
    Returns ``(config, pyproject_path_or_None)``."""
    pyproject = find_pyproject(start)
    if pyproject is None:
        return ReprolintConfig(), None
    try:
        parsed = tomllib.loads(pyproject.read_text())
    except tomllib.TOMLDecodeError as exc:
        raise ConfigError(f"{pyproject}: {exc}") from exc
    table = parsed.get("tool", {}).get("reprolint")
    if table is None:
        return ReprolintConfig(), pyproject
    if not isinstance(table, dict):
        raise ConfigError(f"{pyproject}: [tool.reprolint] must be a table")
    return ReprolintConfig.from_mapping(table), pyproject
