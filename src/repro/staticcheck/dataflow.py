"""The intraprocedural dataflow engine under the flow-aware rules.

PR 4's checkers were purely syntactic: they recognized *shapes*
(``random.Random()`` with no argument, an attribute name mentioned
anywhere inside ``snapshot_state``).  The ROADMAP's four blind spots all
require knowing where a *value* came from or where it *goes* --
``Random(time.time())`` is only wrong because the seed derives from the
wall clock; a ``snapshot_state`` that reads an attribute but drops it
from the returned dict is only wrong because the read never reaches the
``return``.  This module supplies that knowledge as a small taint
analysis over per-function def-use chains:

* **Sources.**  Entropy reads (``time.time``, ``os.urandom``,
  ``os.getpid``, ``uuid.uuid4``, the global-``random`` draws, ...),
  float-producing operations (true division, ``float()``, the
  float-valued ``math`` attributes), and ``self.X`` attribute loads each
  start a :class:`Taint` with a *kind* (``ENTROPY``/``FLOAT``/``ATTR``/
  ``ALIAS``), the source expression, and its line.

* **Propagation.**  A single forward pass per function, in statement
  order: assignments and augmented assignments rebind names (strong
  update); ``if``/``try`` branches run on copies of the environment and
  merge by union; loop bodies run twice so loop-carried taint is seen;
  calls propagate the union of their argument and callee taints; calls
  of *local* functions and ``self.``-methods substitute the callee's
  return-taint summary (two summary iterations, so short call chains
  resolve).  Data-dependency kinds flow through everything; the
  ``ALIAS`` kind -- "this name *is* that ``self`` attribute" -- flows
  only through plain name/attribute/subscript bindings, because a call
  or constructor returns a new object.

* **Traces.**  Every hop through a named binding is recorded, so a rule
  can render ``seeded from time.time() (line 4) -> seed (line 5)`` in
  its finding message instead of a bare "tainted".

v3 lifts the engine across module boundaries.  A :class:`ModuleDataflow`
built with a *project* oracle (see :mod:`repro.staticcheck.summaries`)
substitutes fixpoint return-taint summaries for calls that resolve to
functions in *other analyzed modules* -- ``module.func(...)``,
``from m import f``-style calls, and ``Module.Class.method`` chains --
so entropy laundered through any number of helpers in any number of
files still reaches the sink with a full cross-file trace.  Taints
substituted this way carry an ``origin`` (the defining module), which
the trace renders as ``os.getpid (pkg.helpers:4)``.  The same engine,
run in *seed-collection* mode (``collect_calls=True``), records the raw
material those summaries are built from: symbolic ``CALL`` taints for
unresolved cross-module targets, per-function call refs, and
param-mutation facts (parameters bound to ``ALIAS`` markers, so
``t = p; t.clear()`` is still a mutation of parameter ``p``).

v4 adds **receiver-typed call resolution**: a lightweight
intraprocedural type-inference layer that tracks which *class* a name
is an instance of -- ``x = ClassName(...)`` through locals,
``self._x = ClassName(...)`` attribute bindings (harvested per class),
and parameter annotations -- so ``obj.m()`` resolves to the defining
class's method (``":Cls.m"`` locally, ``"pkg.mod.Cls.m"`` across
modules) instead of being opaque, and ``self.m()`` resolves to the
*enclosing* class instead of conflating every same-named method in the
module.  Types are optimistic (the ``RefResolver`` validates every ref
against real definitions, so a wrong guess degrades to "unresolved",
never to a wrong edge) and flow must-style: branches keep a type only
when every arm agrees, rebinding to anything untypable drops it.
Resolved targets are memoized per call node during the flow pass, so
post-hoc queries (``mutated_args``, the R001 cross-module check) see
the same typed resolution the flows computed.

Beyond typing, the engine stays exactly as conservative as v2: no heap
model, no path sensitivity.  The rules that ride on it are conservative
in the direction of their invariant and anything residual is a reviewed
``allow[...]`` -- same contract as PR 4.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

__all__ = [
    "Taint",
    "ENTROPY",
    "FLOAT",
    "ATTR",
    "ALIAS",
    "CALL",
    "ModuleDataflow",
    "FunctionFlow",
    "ENTROPY_SOURCES",
    "ENTROPY_ROOTS",
    "FLOAT_MATH",
    "FLOAT_NUMPY",
    "NUMPY_ROOTS",
    "MUTATOR_METHODS",
    "dotted_parts",
]

# -- taint kinds -------------------------------------------------------

#: Value derives from an unseedable entropy source (clock, OS, uuid...).
ENTROPY = "entropy"
#: Value derives from a float-producing operation.
FLOAT = "float"
#: Value derives from (was read out of) a ``self.X`` attribute.
ATTR = "attr"
#: Name *is* a ``self.X`` attribute (object identity, not just data).
ALIAS = "alias"
#: Value is the return of a not-yet-resolved cross-module call (seed
#: mode only; the fixpoint replaces these with the callee's taints).
CALL = "call"

#: Hops kept per trace; beyond this the trail is elided, not the taint.
_MAX_HOPS = 8

#: ``ALIAS`` source spelling for "this name is parameter *i*" in seed
#: mode; lets ``t = p; t.clear()`` register as a mutation of param *i*.
_PARAM_MARK = "<param:"

# -- source tables (shared with the syntactic checkers) ----------------

#: Wall-clock reads on the ``time`` module.
CLOCK_TIME_ATTRS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
)
#: Wall-clock reads on ``datetime``/``date``.
CLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})
DATETIME_ROOTS = frozenset({"datetime", "date"})
UUID_ATTRS = frozenset({"uuid1", "uuid4"})

#: Dotted callables whose *result* is entropy-derived.  ``random.*``
#: draws from the shared global RNG; ``secrets.*`` is matched by root.
ENTROPY_SOURCES = frozenset(
    {f"time.{leaf}" for leaf in CLOCK_TIME_ATTRS}
    | {f"{root}.{leaf}" for root in DATETIME_ROOTS for leaf in CLOCK_DATETIME_ATTRS}
    | {f"datetime.datetime.{leaf}" for leaf in CLOCK_DATETIME_ATTRS}
    | {f"datetime.date.{leaf}" for leaf in CLOCK_DATETIME_ATTRS}
    | {f"uuid.{leaf}" for leaf in UUID_ATTRS}
    | {
        "os.urandom",
        "os.getpid",
        "os.getppid",
        "random.random",
        "random.randint",
        "random.randrange",
        "random.randbytes",
        "random.getrandbits",
        "random.uniform",
        "random.choice",
        "random.SystemRandom",
    }
)
#: Any call rooted at one of these modules is entropy, whatever the leaf.
ENTROPY_ROOTS = frozenset({"secrets"})

#: ``math`` attributes that return (or are) floats (R001's table, moved
#: here so the float taint kind and the syntactic rule share one list).
FLOAT_MATH = frozenset(
    {
        "sqrt", "cbrt", "exp", "exp2", "expm1",
        "log", "log2", "log10", "log1p",
        "pow", "hypot", "dist", "fsum", "fmod", "remainder",
        "sin", "cos", "tan", "asin", "acos", "atan", "atan2",
        "sinh", "cosh", "tanh", "degrees", "radians",
        "pi", "e", "tau", "inf", "nan",
    }
)

#: numpy attributes that are float dtypes or promote to float.
FLOAT_NUMPY = frozenset(
    {
        "float16", "float32", "float64", "float128",
        "half", "single", "double", "longdouble", "floating",
        "sqrt", "cbrt", "exp", "exp2", "expm1",
        "log", "log2", "log10", "log1p",
        "true_divide", "divide", "reciprocal",
        "mean", "average", "std", "var", "median",
        "sin", "cos", "tan", "arctan2", "hypot",
        "linspace", "logspace",
    }
)

#: Names ``numpy`` is commonly bound to.
NUMPY_ROOTS = frozenset({"np", "numpy"})

#: Method names that mutate their receiver in place.  Used two ways: a
#: call ``self.X.append(...)`` is a state mutation (R005), and a call
#: ``d.update(other)`` merges ``other``'s taints into ``d``.
MUTATOR_METHODS = frozenset(
    {
        "add", "append", "appendleft", "clear", "discard", "extend",
        "extendleft", "insert", "pop", "popleft", "popitem", "remove",
        "reverse", "setdefault", "sort", "update",
    }
)


@dataclass(frozen=True, slots=True)
class Taint:
    """One tracked provenance: *kind* (``ENTROPY``/``FLOAT``/``ATTR``/
    ``ALIAS``/``CALL``), the source expression text, its line, and the
    hops the value took through named bindings since.  ``origin`` names
    the module the source lives in when the taint crossed a module
    boundary ("" while it stays local), so cross-file traces read
    ``os.getpid (pkg.helpers:4) -> seed_for() return (line 9)``."""

    kind: str
    source: str
    line: int
    hops: tuple[str, ...] = ()
    origin: str = ""

    def hop(self, step: str) -> "Taint":
        if len(self.hops) >= _MAX_HOPS:
            return self
        return Taint(self.kind, self.source, self.line, self.hops + (step,), self.origin)

    def trace(self) -> tuple[str, ...]:
        """Human-readable origin-to-here chain for finding messages."""
        where = f"{self.origin}:{self.line}" if self.origin else f"line {self.line}"
        return (f"{self.source} ({where})", *self.hops)


_EMPTY: frozenset[Taint] = frozenset()

#: Kinds that survive a call / arithmetic / construction boundary: the
#: result still *derives from* the input, but is a fresh object.
#: ``CALL`` placeholders ride along so seed-mode summaries see entropy
#: laundered through arithmetic on an unresolved call's result.
_DATA_KINDS = frozenset({ENTROPY, FLOAT, ATTR, CALL})


def _data_only(taints: frozenset[Taint]) -> frozenset[Taint]:
    return frozenset(t for t in taints if t.kind in _DATA_KINDS)


def _param_indices(taints: frozenset[Taint]) -> frozenset[int]:
    """Parameter indices named by seed-mode ``<param:i>`` alias marks."""
    out = set()
    for taint in taints:
        if taint.kind == ALIAS and taint.source.startswith(_PARAM_MARK):
            out.add(int(taint.source[len(_PARAM_MARK) : -1]))
    return frozenset(out)


def dotted_parts(node: ast.expr) -> tuple[str, ...] | None:
    """``a.b.c`` as ``("a", "b", "c")`` when the chain roots in a plain
    name, else ``None``."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return tuple(reversed(parts))
    return None


class ModuleDataflow:
    """Dataflow over one module: a :class:`FunctionFlow` per function
    (plus one for module-level statements), return-taint summaries for
    local functions and methods, and an import-alias table so
    ``from time import time as wall`` still reads as ``time.time``.

    ``module_name`` anchors relative imports (``from .helpers import f``)
    to canonical dotted names.  ``project`` is the cross-module oracle
    (duck-typed: ``lookup(module, ref)`` / ``mutated_params(module,
    ref)``); when present, calls resolving into other analyzed modules
    substitute the callee's fixpoint summary.  ``collect_calls=True``
    switches to seed-collection mode instead: parameters are bound to
    alias markers and each flow records call refs, param passes and
    param mutations for :mod:`repro.staticcheck.summaries`."""

    def __init__(
        self,
        tree: ast.Module,
        module_name: str = "",
        project: object | None = None,
        collect_calls: bool = False,
    ) -> None:
        self.tree = tree
        self.module_name = module_name
        self.project = project
        self.collect_calls = collect_calls
        self.aliases = self._import_aliases(tree, module_name)
        #: Classes defined in this module (receiver typing resolves a
        #: ``ClassName(...)`` construction to ``":ClassName"``).
        self.classes = frozenset(
            node.name for node in ast.walk(tree) if isinstance(node, ast.ClassDef)
        )
        #: Return-taint summaries: ``("", name)`` for module-level
        #: functions, ``(class_name, name)`` for methods.
        self.summaries: dict[tuple[str, str], frozenset[Taint]] = {}
        #: node id -> taints, shared by every flow in the module.
        self._memo: dict[int, frozenset[Taint]] = {}
        #: call node id -> resolved (ref, offset) or None, written by
        #: the flows so post-hoc queries see typed resolutions.
        self._call_targets: dict[int, tuple[str, int] | None] = {}
        self.function_nodes = self._collect_functions(tree)
        #: ``(class, method)`` pairs defined here, stable before any
        #: flow runs (unlike ``summaries``, filled per round).
        self._method_keys = frozenset(
            (owner, func.name) for owner, func in self.function_nodes if owner
        )
        #: class -> attr -> type ref, from ``self._x = ClassName(...)``
        #: and annotated attribute assignments inside each class.
        self.class_attr_types = self._harvest_class_attr_types(tree)
        self._run()

    # -- construction --------------------------------------------------

    @staticmethod
    def _import_aliases(tree: ast.Module, module_name: str = "") -> dict[str, str]:
        aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    aliases[(name.asname or name.name).split(".")[0]] = (
                        name.name if name.asname else name.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    # Relative import: resolve against the module's own
                    # dotted name (mirrors loader.module_imports).
                    if not module_name:
                        continue
                    parts = module_name.split(".")
                    if node.level > len(parts):
                        continue
                    base = parts[: len(parts) - node.level]
                    target = ".".join(base + ([node.module] if node.module else []))
                else:
                    target = node.module or ""
                if not target:
                    continue
                for name in node.names:
                    if name.name != "*":
                        aliases[name.asname or name.name] = f"{target}.{name.name}"
        return aliases

    @staticmethod
    def _collect_functions(
        tree: ast.Module,
    ) -> list[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
        """Every function with its owning class name ("" for module
        level), outer-to-inner so summaries exist before most uses."""
        out: list[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]] = []

        def visit(node: ast.AST, owner: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    out.append((owner, child))
                    visit(child, owner)
                elif isinstance(child, ast.ClassDef):
                    visit(child, child.name)
                else:
                    visit(child, owner)

        visit(tree, "")
        return out

    # -- receiver typing -----------------------------------------------

    @staticmethod
    def _looks_like_class(dotted: str) -> bool:
        """CamelCase filter for optimistic constructor typing: keeps
        ``x = helpers.compute()`` from minting refs for every factory
        call.  Wrong guesses are still safe -- the resolver only accepts
        refs naming a real method -- this just bounds ref noise."""
        return dotted.rsplit(".", 1)[-1][:1].isupper()

    def constructed_type(
        self,
        node: ast.Call,
        env: "dict[str, frozenset[Taint]] | None" = None,
    ) -> str | None:
        """The type ref a constructor call produces: ``":Cls"`` for a
        class of this module, its canonical dotted name for an imported
        one, ``None`` when the callee is not recognizably a class."""
        func = node.func
        if isinstance(func, ast.Name):
            if env is not None and func.id in env:
                return None  # locally rebound; not the class
            if func.id in self.classes:
                return f":{func.id}"
            dotted = self.aliases.get(func.id)
            if dotted is not None and "." in dotted and self._looks_like_class(dotted):
                return dotted
            return None
        parts = dotted_parts(func)
        if parts is None or parts[0] == "self":
            return None
        if env is not None and parts[0] in env:
            return None
        root = self.aliases.get(parts[0])
        if root is None:
            return None
        dotted = ".".join((root, *parts[1:]))
        return dotted if self._looks_like_class(dotted) else None

    def annotation_type(self, annotation: ast.expr) -> str | None:
        """The type ref an annotation denotes (``x: Engine`` /
        ``x: mod.Engine`` / ``x: "Engine"``); ``None`` for anything
        fancier (unions, subscripts) -- conservatively untyped."""
        if isinstance(annotation, ast.Name):
            parts: tuple[str, ...] | None = (annotation.id,)
        elif isinstance(annotation, ast.Attribute):
            parts = dotted_parts(annotation)
        elif isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            parts = tuple(annotation.value.strip().split("."))
            if not all(part.isidentifier() for part in parts):
                parts = None
        else:
            parts = None
        if parts is None:
            return None
        if len(parts) == 1:
            if parts[0] in self.classes:
                return f":{parts[0]}"
            dotted = self.aliases.get(parts[0])
            return dotted if dotted is not None and "." in dotted else None
        root = self.aliases.get(parts[0])
        if root is None:
            return None
        return ".".join((root, *parts[1:]))

    def _harvest_class_attr_types(
        self, tree: ast.Module
    ) -> dict[str, dict[str, str]]:
        """Per class: attributes whose every typed assignment agrees on
        one constructed class (``self._x = ClassName(...)`` or an
        annotated attribute); conflicting bindings drop the attr."""
        table: dict[str, dict[str, str]] = {}
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            attrs = table.setdefault(node.name, {})
            for item in ast.walk(node):
                if isinstance(item, ast.Assign) and len(item.targets) == 1:
                    target, value, annotation = item.targets[0], item.value, None
                elif isinstance(item, ast.AnnAssign):
                    target, value, annotation = item.target, item.value, item.annotation
                else:
                    continue
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                ref = self.annotation_type(annotation) if annotation is not None else None
                if ref is None and isinstance(value, ast.Call):
                    ref = self.constructed_type(value)
                if ref is None:
                    continue
                if attrs.get(target.attr, ref) != ref:
                    attrs[target.attr] = ""  # conflicting types: untyped
                else:
                    attrs[target.attr] = ref
            for attr in [name for name, ref in attrs.items() if not ref]:
                del attrs[attr]
        return table

    def _run(self) -> None:
        # Two summary rounds: the first sees leaf functions, the second
        # resolves one level of local call chaining (f -> g -> source).
        for _round in range(2):
            for owner, func in self.function_nodes:
                flow = FunctionFlow(func, self, owner=owner)
                self.summaries[(owner, func.name)] = flow.return_taints
        # Final round records node taints with complete summaries, and
        # runs the module-level statements as a pseudo-function.
        self._memo.clear()
        self._call_targets.clear()
        self._flows: dict[int, FunctionFlow] = {}
        for owner, func in self.function_nodes:
            flow = FunctionFlow(func, self, memo=self._memo, owner=owner)
            self.summaries[(owner, func.name)] = flow.return_taints
            self._flows[id(func)] = flow
        self.module_flow = FunctionFlow(self.tree, self, memo=self._memo)

    # -- queries -------------------------------------------------------

    def taints(self, node: ast.AST) -> frozenset[Taint]:
        """The taints of an evaluated expression node (empty for nodes
        the pass never reached, e.g. dead code after ``return``)."""
        return self._memo.get(id(node), _EMPTY)

    def flow(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> "FunctionFlow | None":
        return self._flows.get(id(func))

    def resolve(self, node: ast.expr) -> str | None:
        """The canonical dotted name of a callable expression, with
        import aliases unfolded (``wall`` -> ``time.time``)."""
        parts = dotted_parts(node)
        if parts is None:
            return None
        root = self.aliases.get(parts[0], parts[0])
        return ".".join((root, *parts[1:]))

    def call_target(
        self,
        node: ast.Call,
        env: dict[str, frozenset[Taint]] | None = None,
        types: dict[str, str] | None = None,
        owner: str = "",
    ) -> tuple[str, int] | None:
        """The callee of *node* as an interprocedural ref, or ``None``
        when it cannot be named statically.

        Ref forms: ``":f"`` -- a module-level function of *this* module;
        ``":Cls.m"`` -- a method of a class of this module (the
        receiver's class known from typing or from ``self`` inside an
        enclosing class); ``"self.m"`` -- a ``self`` call whose
        enclosing class does not define ``m`` (inherited; name-matched
        by the resolver); a canonical dotted name
        (``"pkg.helpers.seed_for"`` / ``"pkg.mod.Cls.m"``) -- anything
        reached through an import alias or a cross-module receiver
        type.  The second element is the arg offset: caller argument
        *i* binds callee parameter ``i + offset`` (1 for method calls,
        else 0).  ``env``/``types``/``owner`` carry the calling flow's
        locals, receiver types, and enclosing class; without them
        (post-hoc queries) the memo written during the flow pass
        answers, so checkers see the same typed resolution.
        """
        if env is None and types is None and id(node) in self._call_targets:
            return self._call_targets[id(node)]
        func = node.func
        if isinstance(func, ast.Name):
            if env is not None and func.id in env:
                return None
            if ("", func.id) in self.summaries:
                return (f":{func.id}", 0)
            dotted = self.aliases.get(func.id)
            if dotted is not None and "." in dotted:
                if FunctionFlow._source_taints(dotted, func.lineno):
                    return None
                return (dotted, 0)
            return None
        parts = dotted_parts(func)
        if parts is None:
            return None
        if parts[0] == "self":
            if len(parts) == 2:
                if owner and (owner, parts[1]) in self._method_keys:
                    return (f":{owner}.{parts[1]}", 1)
                return (f"self.{parts[1]}", 1)
            if len(parts) == 3 and owner:
                # self._x.m() through a typed class attribute.
                attr_ref = self.class_attr_types.get(owner, {}).get(parts[1])
                if attr_ref is not None:
                    return (f"{attr_ref}.{parts[2]}", 1)
            return None
        if types is not None and len(parts) == 2:
            receiver = types.get(parts[0])
            if receiver is not None:
                return (f"{receiver}.{parts[1]}", 1)
        if env is not None and parts[0] in env:
            return None
        if parts[0] not in self.aliases:
            return None
        dotted = ".".join((self.aliases[parts[0]], *parts[1:]))
        if FunctionFlow._source_taints(dotted, func.lineno):
            return None
        return (dotted, 0)

    def mutated_args(self, node: ast.Call) -> frozenset[int]:
        """Caller-side positional argument indices whose *objects* the
        callee is known (via project summaries) to mutate in place.
        Empty without a project or for unresolvable callees."""
        if self.project is None:
            return frozenset()
        target = self.call_target(node)
        if target is None:
            return frozenset()
        ref, offset = target
        mutated = self.project.mutated_params(self.module_name, ref)
        return frozenset(i - offset for i in mutated if i >= offset)


class FunctionFlow:
    """One forward pass over one function body (or the module body):
    the environment maps local names to taint sets; every expression
    evaluated along the way lands in the shared memo."""

    def __init__(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module,
        module: ModuleDataflow,
        memo: dict[int, frozenset[Taint]] | None = None,
        owner: str = "",
    ) -> None:
        self.func = func
        self.module = module
        self.memo = memo if memo is not None else {}
        #: The enclosing class name ("" for module-level functions):
        #: resolves ``self.m()`` to this class and ``self._x.m()``
        #: through its typed attributes.
        self.owner = owner
        self.env: dict[str, frozenset[Taint]] = {}
        #: Receiver types: local name -> type ref (":Cls" or dotted).
        self.types: dict[str, str] = {}
        self.return_taints: frozenset[Taint] = _EMPTY
        self.return_nodes: list[ast.Return] = []
        #: Seed-collection mode only: dotted refs this flow calls,
        #: ``(param_idx, callee_ref, callee_arg_pos)`` passes, and the
        #: indices of parameters whose objects the body mutates.
        self.call_refs: set[str] = set()
        self.param_passes: set[tuple[int, str, int]] = set()
        self.mutated_params: set[int] = set()
        if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            params = [*func.args.posonlyargs, *func.args.args]
            if module.collect_calls:
                for index, param in enumerate(params):
                    self.env[param.arg] = frozenset(
                        {Taint(ALIAS, f"{_PARAM_MARK}{index}>", func.lineno)}
                    )
            for param in [*params, *func.args.kwonlyargs]:
                if param.annotation is not None:
                    ref = module.annotation_type(param.annotation)
                    if ref is not None:
                        self.types[param.arg] = ref
        body = func.body if isinstance(func.body, list) else []
        self._exec_block(body)

    # -- statements ----------------------------------------------------

    def _exec_block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt)

    def _branch(self, *blocks: list[ast.stmt]) -> None:
        """Run each block on a copy of the environment, then merge the
        copies by key-wise union (a may-analysis join).  Receiver types
        merge the opposite way (must-analysis): a name stays typed only
        when every arm leaves it with the same type."""
        merged = dict(self.env)
        type_results: list[dict[str, str]] = []
        for block in blocks:
            saved_env, saved_types = self.env, self.types
            self.env = dict(saved_env)
            self.types = dict(saved_types)
            self._exec_block(block)
            for name, taints in self.env.items():
                merged[name] = merged.get(name, _EMPTY) | taints
            type_results.append(self.types)
            self.env, self.types = saved_env, saved_types
        self.env = merged
        names: set[str] = set()
        for result in type_results:
            names |= set(result)
        agreed: dict[str, str] = {}
        for name in names:
            refs = {result.get(name) for result in type_results}
            if len(refs) == 1 and None not in refs:
                agreed[name] = refs.pop()
        self.types = agreed

    def _exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taints = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, taints)
                self._retype(target, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            taints = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                taints = taints | self.env.get(stmt.target.id, _EMPTY)
            self._bind(stmt.target, taints)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._eval(stmt.value))
            if isinstance(stmt.target, ast.Name):
                ref = self.module.annotation_type(stmt.annotation)
                if ref is None and stmt.value is not None:
                    ref = self._type_of_value(stmt.value)
                if ref is not None:
                    self.types[stmt.target.id] = ref
                else:
                    self.types.pop(stmt.target.id, None)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            self.return_nodes.append(stmt)
            if stmt.value is not None:
                self.return_taints = self.return_taints | self._eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._branch(stmt.body, stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_taints = self._eval(stmt.iter)
            self._bind(stmt.target, _data_only(iter_taints))
            # Twice: the second pass sees bindings the first created, so
            # loop-carried taint (acc = acc + draw) is propagated.
            self._branch(stmt.body)
            self._branch(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._branch(stmt.body)
            self._branch(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taints = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taints)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._branch(stmt.body)
            for handler in stmt.handlers:
                self._branch(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for value in ast.iter_child_nodes(stmt):
                if isinstance(value, ast.expr):
                    self._eval(value)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
                    self.types.pop(target.id, None)
                elif isinstance(target, (ast.Subscript, ast.Attribute)):
                    self._note_param_store(target.value)
        # Nested FunctionDef / ClassDef / Import / Pass / Break /
        # Continue / Global / Nonlocal: no dataflow at this level.

    # -- binding -------------------------------------------------------

    def _bind(self, target: ast.expr, taints: frozenset[Taint]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = frozenset(
                t.hop(f"-> {target.id} (line {target.lineno})") for t in taints
            )
            # Strong update: any rebinding clears the receiver type;
            # _retype (plain assignments only) re-adds what it can infer.
            self.types.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, _data_only(taints))
        elif isinstance(target, ast.Starred):
            self._bind(target.value, _data_only(taints))
        elif isinstance(target, ast.Subscript):
            # d[k] = tainted: the container now carries the taint (weak
            # update -- existing taints stay).
            self._eval(target.slice)
            base = target.value
            if isinstance(base, ast.Name):
                self.env[base.id] = self.env.get(base.id, _EMPTY) | _data_only(
                    taints
                )
            self._note_param_store(base)
        elif isinstance(target, ast.Attribute):
            # Attribute targets (self.X = ...) are stores the syntactic
            # rules already see; in seed mode, p.x = ... is a mutation
            # of the object parameter p aliases.
            self._note_param_store(target.value)

    def _retype(self, target: ast.expr, value: ast.expr) -> None:
        """Record the receiver type a plain-name assignment establishes
        (``_bind`` already cleared the old one)."""
        if isinstance(target, ast.Name):
            ref = self._type_of_value(value)
            if ref is not None:
                self.types[target.id] = ref

    def _type_of_value(self, value: ast.expr) -> str | None:
        """The type ref of an assigned value: a constructor call, a
        copy of an already-typed name, or a typed ``self`` attribute."""
        if isinstance(value, ast.Call):
            return self.module.constructed_type(value, env=self.env)
        if isinstance(value, ast.Name):
            return self.types.get(value.id)
        if isinstance(value, ast.Attribute) and self.owner:
            parts = dotted_parts(value)
            if parts is not None and len(parts) == 2 and parts[0] == "self":
                return self.module.class_attr_types.get(self.owner, {}).get(parts[1])
        return None

    def _note_param_store(self, base: ast.expr) -> None:
        """Seed mode: a store through *base* mutates any parameter the
        rooted name aliases (``self`` excluded -- R005's territory)."""
        if not self.module.collect_calls:
            return
        root = base
        while isinstance(root, (ast.Attribute, ast.Subscript)):
            root = root.value
        if isinstance(root, ast.Name) and root.id != "self":
            self.mutated_params |= _param_indices(self.env.get(root.id, _EMPTY))

    # -- expressions ---------------------------------------------------

    def _eval(self, node: ast.expr) -> frozenset[Taint]:
        taints = self._eval_inner(node)
        self.memo[id(node)] = taints
        return taints

    def _eval_inner(self, node: ast.expr) -> frozenset[Taint]:  # noqa: C901
        if isinstance(node, ast.Constant):
            return _EMPTY
        if isinstance(node, ast.Name):
            local = self.env.get(node.id)
            if local is not None:
                return local  # locals shadow imported names
            # An unbound name may be a from-imported source under an
            # alias: `from time import time as wall` makes a bare
            # `wall` read as `time.time`.
            dotted = self.module.aliases.get(node.id)
            if dotted is not None and "." in dotted:
                return self._source_taints(dotted, node.lineno)
            return _EMPTY
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            taints = _data_only(self._eval(node.left) | self._eval(node.right))
            if isinstance(node.op, ast.Div):
                taints = taints | {
                    Taint(FLOAT, "true division `/`", node.lineno)
                }
            return taints
        if isinstance(node, ast.BoolOp):
            out = _EMPTY
            for value in node.values:
                out = out | self._eval(value)
            return out
        if isinstance(node, ast.UnaryOp):
            return _data_only(self._eval(node.operand))
        if isinstance(node, ast.Compare):
            out = self._eval(node.left)
            for comparator in node.comparators:
                out = out | self._eval(comparator)
            return _data_only(out)
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return self._eval(node.body) | self._eval(node.orelse)
        if isinstance(node, ast.Subscript):
            self._eval(node.slice)
            return self._eval(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = _EMPTY
            for element in node.elts:
                out = out | self._eval(element)
            return _data_only(out)
        if isinstance(node, ast.Dict):
            out = _EMPTY
            for key in node.keys:
                if key is not None:
                    out = out | self._eval(key)
            for value in node.values:
                out = out | self._eval(value)
            return _data_only(out)
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            return self._eval_comprehension(node)
        if isinstance(node, ast.NamedExpr):
            taints = self._eval(node.value)
            self._bind(node.target, taints)
            return taints
        if isinstance(node, ast.JoinedStr):
            out = _EMPTY
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out = out | self._eval(value.value)
            return _data_only(out)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._eval(node.value)
        if isinstance(node, ast.Yield):
            return self._eval(node.value) if node.value is not None else _EMPTY
        if isinstance(node, ast.Lambda):
            return _EMPTY  # own scope; not executed here
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self._eval(part)
            return _EMPTY
        return _EMPTY

    def _eval_attribute(self, node: ast.Attribute) -> frozenset[Taint]:
        parts = dotted_parts(node)
        if parts is not None and parts[0] == "self" and len(parts) >= 2:
            # A self-attribute load: both a data dependency on the
            # attribute and an alias of the attribute object itself.
            source = ".".join(parts[: 2])
            return frozenset(
                {
                    Taint(ATTR, source, node.lineno),
                    Taint(ALIAS, source, node.lineno),
                }
            )
        dotted = self.module.resolve(node)
        if dotted is not None:
            taints = self._source_taints(dotted, node.lineno)
            if taints:
                return taints
        # Attribute of a tracked value: data dependency, and keep any
        # alias (y.b where y aliases self.X is still inside self.X).
        return self._eval(node.value)

    @staticmethod
    def _source_taints(dotted: str, lineno: int) -> frozenset[Taint]:
        """Taints seeded by reading the canonical dotted name *dotted*
        (the shared source tables), empty when it is not a source."""
        root = dotted.split(".")[0]
        if dotted in ENTROPY_SOURCES or root in ENTROPY_ROOTS:
            return frozenset({Taint(ENTROPY, dotted, lineno)})
        leaf = dotted.rsplit(".", 1)[-1]
        if root == "math" and leaf in FLOAT_MATH:
            return frozenset({Taint(FLOAT, dotted, lineno)})
        if root in NUMPY_ROOTS and leaf in FLOAT_NUMPY:
            return frozenset({Taint(FLOAT, dotted, lineno)})
        return _EMPTY

    def _eval_call(self, node: ast.Call) -> frozenset[Taint]:
        func_taints = self._eval(node.func)
        arg_taint_sets = [self._eval(arg) for arg in node.args]
        arg_taints = _EMPTY
        for taints in arg_taint_sets:
            arg_taints = arg_taints | taints
        for keyword in node.keywords:
            arg_taints = arg_taints | self._eval(keyword.value)
        # d.update(other) / d.append(x): the receiver absorbs the
        # argument taints (containers as sinks-then-sources); in seed
        # mode a mutator call on a parameter alias is a param mutation.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATOR_METHODS
            and isinstance(node.func.value, ast.Name)
        ):
            receiver = node.func.value.id
            if self.module.collect_calls and receiver != "self":
                self.mutated_params |= _param_indices(
                    self.env.get(receiver, _EMPTY)
                )
            self.env[receiver] = self.env.get(receiver, _EMPTY) | _data_only(
                arg_taints
            )
        # float() is itself a float source; setattr/delattr through a
        # parameter alias mutates that parameter's object (seed mode).
        extra: frozenset[Taint] = _EMPTY
        if isinstance(node.func, ast.Name):
            if node.func.id == "float":
                extra = frozenset({Taint(FLOAT, "float()", node.lineno)})
            elif (
                node.func.id in ("setattr", "delattr")
                and self.module.collect_calls
                and arg_taint_sets
            ):
                self.mutated_params |= _param_indices(arg_taint_sets[0])
        # Calls of local functions / self-methods substitute the callee's
        # return summary (re-anchored at the call line, keeping the
        # callee-side origin in the trace).
        summary = self._summary_for(node)
        if summary:
            extra = extra | frozenset(
                t.hop(f"-> returned to line {node.lineno}") for t in summary
            )
        extra = extra | self._interprocedural(node, arg_taint_sets)
        return _data_only(func_taints | arg_taints) | extra

    def _interprocedural(
        self, node: ast.Call, arg_taint_sets: list[frozenset[Taint]]
    ) -> frozenset[Taint]:
        """Seed mode: record the call's ref / param passes and return a
        ``CALL`` placeholder for cross-module targets.  Check mode with
        a project: substitute the resolved callee's fixpoint taints."""
        target = self.module.call_target(
            node, env=self.env, types=self.types, owner=self.owner
        )
        self.module._call_targets[id(node)] = target
        if target is None:
            return _EMPTY
        ref, offset = target
        local = ref.startswith((":", "self."))
        if self.module.collect_calls:
            for pos, taints in enumerate(arg_taint_sets):
                for index in _param_indices(taints):
                    self.param_passes.add((index, ref, pos + offset))
            if local:
                # Local transitivity is already carried by the
                # module-level summaries; no placeholder needed.
                return _EMPTY
            self.call_refs.add(ref)
            return frozenset({Taint(CALL, ref, node.lineno)})
        if self.module.project is not None and not local:
            info = self.module.project.lookup(self.module.module_name, ref)
            if info is not None and info.taints:
                leaf = ref.rsplit(".", 1)[-1]
                return frozenset(
                    t.hop(f"-> {leaf}() return (line {node.lineno})")
                    for t in info.taints
                )
        return _EMPTY

    def _summary_for(self, node: ast.Call) -> frozenset[Taint]:
        func = node.func
        if isinstance(func, ast.Name):
            return self.module.summaries.get(("", func.id), _EMPTY)
        parts = dotted_parts(func)
        if parts is None:
            return _EMPTY
        if len(parts) == 2 and parts[0] == "self":
            # self.m(): the enclosing class's own method when it has
            # one; the v3 conflation loop (first same-named method in
            # the module) survives only as the inherited-method
            # fallback.
            if self.owner and (self.owner, parts[1]) in self.module._method_keys:
                return self.module.summaries.get((self.owner, parts[1]), _EMPTY)
            for (owner, name), summary in self.module.summaries.items():
                if owner and name == parts[1]:
                    return summary
            return _EMPTY
        if len(parts) == 2:
            # obj.m() where obj's class (receiver-typed) lives here.
            ref = self.types.get(parts[0])
            if ref is not None and ref.startswith(":"):
                return self.module.summaries.get((ref[1:], parts[1]), _EMPTY)
            return _EMPTY
        if len(parts) == 3 and parts[0] == "self" and self.owner:
            # self._x.m() where _x's class (attribute-typed) lives here.
            ref = self.module.class_attr_types.get(self.owner, {}).get(parts[1])
            if ref is not None and ref.startswith(":"):
                return self.module.summaries.get((ref[1:], parts[2]), _EMPTY)
        return _EMPTY

    def _eval_comprehension(self, node: ast.expr) -> frozenset[Taint]:
        saved = dict(self.env)
        saved_types = dict(self.types)
        try:
            for gen in node.generators:  # type: ignore[attr-defined]
                taints = self._eval(gen.iter)
                self._bind(gen.target, _data_only(taints))
                for condition in gen.ifs:
                    self._eval(condition)
            if isinstance(node, ast.DictComp):
                out = self._eval(node.key) | self._eval(node.value)
            else:
                out = self._eval(node.elt)  # type: ignore[attr-defined]
            return _data_only(out)
        finally:
            self.env = saved
            self.types = saved_types
