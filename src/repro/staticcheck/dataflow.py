"""The intraprocedural dataflow engine under the flow-aware rules.

PR 4's checkers were purely syntactic: they recognized *shapes*
(``random.Random()`` with no argument, an attribute name mentioned
anywhere inside ``snapshot_state``).  The ROADMAP's four blind spots all
require knowing where a *value* came from or where it *goes* --
``Random(time.time())`` is only wrong because the seed derives from the
wall clock; a ``snapshot_state`` that reads an attribute but drops it
from the returned dict is only wrong because the read never reaches the
``return``.  This module supplies that knowledge as a small taint
analysis over per-function def-use chains:

* **Sources.**  Entropy reads (``time.time``, ``os.urandom``,
  ``os.getpid``, ``uuid.uuid4``, the global-``random`` draws, ...),
  float-producing operations (true division, ``float()``, the
  float-valued ``math`` attributes), and ``self.X`` attribute loads each
  start a :class:`Taint` with a *kind* (``ENTROPY``/``FLOAT``/``ATTR``/
  ``ALIAS``), the source expression, and its line.

* **Propagation.**  A single forward pass per function, in statement
  order: assignments and augmented assignments rebind names (strong
  update); ``if``/``try`` branches run on copies of the environment and
  merge by union; loop bodies run twice so loop-carried taint is seen;
  calls propagate the union of their argument and callee taints; calls
  of *local* functions and ``self.``-methods substitute the callee's
  return-taint summary (two summary iterations, so short call chains
  resolve).  Data-dependency kinds flow through everything; the
  ``ALIAS`` kind -- "this name *is* that ``self`` attribute" -- flows
  only through plain name/attribute/subscript bindings, because a call
  or constructor returns a new object.

* **Traces.**  Every hop through a named binding is recorded, so a rule
  can render ``seeded from time.time() (line 4) -> seed (line 5)`` in
  its finding message instead of a bare "tainted".

The engine is deliberately intraprocedural (plus the one-module summary
step): no fixpoint across modules, no heap model, no path sensitivity.
The rules that ride on it are conservative in the direction of their
invariant and anything residual is a reviewed ``allow[...]`` -- same
contract as PR 4.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

__all__ = [
    "Taint",
    "ENTROPY",
    "FLOAT",
    "ATTR",
    "ALIAS",
    "ModuleDataflow",
    "FunctionFlow",
    "ENTROPY_SOURCES",
    "ENTROPY_ROOTS",
    "FLOAT_MATH",
    "FLOAT_NUMPY",
    "NUMPY_ROOTS",
    "MUTATOR_METHODS",
    "dotted_parts",
]

# -- taint kinds -------------------------------------------------------

#: Value derives from an unseedable entropy source (clock, OS, uuid...).
ENTROPY = "entropy"
#: Value derives from a float-producing operation.
FLOAT = "float"
#: Value derives from (was read out of) a ``self.X`` attribute.
ATTR = "attr"
#: Name *is* a ``self.X`` attribute (object identity, not just data).
ALIAS = "alias"

#: Hops kept per trace; beyond this the trail is elided, not the taint.
_MAX_HOPS = 8

# -- source tables (shared with the syntactic checkers) ----------------

#: Wall-clock reads on the ``time`` module.
CLOCK_TIME_ATTRS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
)
#: Wall-clock reads on ``datetime``/``date``.
CLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})
DATETIME_ROOTS = frozenset({"datetime", "date"})
UUID_ATTRS = frozenset({"uuid1", "uuid4"})

#: Dotted callables whose *result* is entropy-derived.  ``random.*``
#: draws from the shared global RNG; ``secrets.*`` is matched by root.
ENTROPY_SOURCES = frozenset(
    {f"time.{leaf}" for leaf in CLOCK_TIME_ATTRS}
    | {f"{root}.{leaf}" for root in DATETIME_ROOTS for leaf in CLOCK_DATETIME_ATTRS}
    | {f"datetime.datetime.{leaf}" for leaf in CLOCK_DATETIME_ATTRS}
    | {f"datetime.date.{leaf}" for leaf in CLOCK_DATETIME_ATTRS}
    | {f"uuid.{leaf}" for leaf in UUID_ATTRS}
    | {
        "os.urandom",
        "os.getpid",
        "os.getppid",
        "random.random",
        "random.randint",
        "random.randrange",
        "random.randbytes",
        "random.getrandbits",
        "random.uniform",
        "random.choice",
        "random.SystemRandom",
    }
)
#: Any call rooted at one of these modules is entropy, whatever the leaf.
ENTROPY_ROOTS = frozenset({"secrets"})

#: ``math`` attributes that return (or are) floats (R001's table, moved
#: here so the float taint kind and the syntactic rule share one list).
FLOAT_MATH = frozenset(
    {
        "sqrt", "cbrt", "exp", "exp2", "expm1",
        "log", "log2", "log10", "log1p",
        "pow", "hypot", "dist", "fsum", "fmod", "remainder",
        "sin", "cos", "tan", "asin", "acos", "atan", "atan2",
        "sinh", "cosh", "tanh", "degrees", "radians",
        "pi", "e", "tau", "inf", "nan",
    }
)

#: numpy attributes that are float dtypes or promote to float.
FLOAT_NUMPY = frozenset(
    {
        "float16", "float32", "float64", "float128",
        "half", "single", "double", "longdouble", "floating",
        "sqrt", "cbrt", "exp", "exp2", "expm1",
        "log", "log2", "log10", "log1p",
        "true_divide", "divide", "reciprocal",
        "mean", "average", "std", "var", "median",
        "sin", "cos", "tan", "arctan2", "hypot",
        "linspace", "logspace",
    }
)

#: Names ``numpy`` is commonly bound to.
NUMPY_ROOTS = frozenset({"np", "numpy"})

#: Method names that mutate their receiver in place.  Used two ways: a
#: call ``self.X.append(...)`` is a state mutation (R005), and a call
#: ``d.update(other)`` merges ``other``'s taints into ``d``.
MUTATOR_METHODS = frozenset(
    {
        "add", "append", "appendleft", "clear", "discard", "extend",
        "extendleft", "insert", "pop", "popleft", "popitem", "remove",
        "reverse", "setdefault", "sort", "update",
    }
)


@dataclass(frozen=True, slots=True)
class Taint:
    """One tracked provenance: *kind* (``ENTROPY``/``FLOAT``/``ATTR``/
    ``ALIAS``), the source expression text, its line, and the hops the
    value took through named bindings since."""

    kind: str
    source: str
    line: int
    hops: tuple[str, ...] = ()

    def hop(self, step: str) -> "Taint":
        if len(self.hops) >= _MAX_HOPS:
            return self
        return Taint(self.kind, self.source, self.line, self.hops + (step,))

    def trace(self) -> tuple[str, ...]:
        """Human-readable origin-to-here chain for finding messages."""
        return (f"{self.source} (line {self.line})", *self.hops)


_EMPTY: frozenset[Taint] = frozenset()

#: Kinds that survive a call / arithmetic / construction boundary: the
#: result still *derives from* the input, but is a fresh object.
_DATA_KINDS = frozenset({ENTROPY, FLOAT, ATTR})


def _data_only(taints: frozenset[Taint]) -> frozenset[Taint]:
    return frozenset(t for t in taints if t.kind in _DATA_KINDS)


def dotted_parts(node: ast.expr) -> tuple[str, ...] | None:
    """``a.b.c`` as ``("a", "b", "c")`` when the chain roots in a plain
    name, else ``None``."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return tuple(reversed(parts))
    return None


class ModuleDataflow:
    """Dataflow over one module: a :class:`FunctionFlow` per function
    (plus one for module-level statements), return-taint summaries for
    local functions and methods, and an import-alias table so
    ``from time import time as wall`` still reads as ``time.time``."""

    def __init__(self, tree: ast.Module) -> None:
        self.tree = tree
        self.aliases = self._import_aliases(tree)
        #: Return-taint summaries: ``("", name)`` for module-level
        #: functions, ``(class_name, name)`` for methods.
        self.summaries: dict[tuple[str, str], frozenset[Taint]] = {}
        #: node id -> taints, shared by every flow in the module.
        self._memo: dict[int, frozenset[Taint]] = {}
        self._functions = self._collect_functions(tree)
        self._run()

    # -- construction --------------------------------------------------

    @staticmethod
    def _import_aliases(tree: ast.Module) -> dict[str, str]:
        aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    aliases[(name.asname or name.name).split(".")[0]] = (
                        name.name if name.asname else name.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and not node.level:
                if node.module is None:
                    continue
                for name in node.names:
                    if name.name != "*":
                        aliases[name.asname or name.name] = (
                            f"{node.module}.{name.name}"
                        )
        return aliases

    @staticmethod
    def _collect_functions(
        tree: ast.Module,
    ) -> list[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
        """Every function with its owning class name ("" for module
        level), outer-to-inner so summaries exist before most uses."""
        out: list[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]] = []

        def visit(node: ast.AST, owner: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    out.append((owner, child))
                    visit(child, owner)
                elif isinstance(child, ast.ClassDef):
                    visit(child, child.name)
                else:
                    visit(child, owner)

        visit(tree, "")
        return out

    def _run(self) -> None:
        # Two summary rounds: the first sees leaf functions, the second
        # resolves one level of local call chaining (f -> g -> source).
        for _round in range(2):
            for owner, func in self._functions:
                flow = FunctionFlow(func, self)
                self.summaries[(owner, func.name)] = flow.return_taints
        # Final round records node taints with complete summaries, and
        # runs the module-level statements as a pseudo-function.
        self._memo.clear()
        self._flows: dict[int, FunctionFlow] = {}
        for owner, func in self._functions:
            flow = FunctionFlow(func, self, memo=self._memo)
            self.summaries[(owner, func.name)] = flow.return_taints
            self._flows[id(func)] = flow
        self._module_flow = FunctionFlow(self.tree, self, memo=self._memo)

    # -- queries -------------------------------------------------------

    def taints(self, node: ast.AST) -> frozenset[Taint]:
        """The taints of an evaluated expression node (empty for nodes
        the pass never reached, e.g. dead code after ``return``)."""
        return self._memo.get(id(node), _EMPTY)

    def flow(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> "FunctionFlow | None":
        return self._flows.get(id(func))

    def resolve(self, node: ast.expr) -> str | None:
        """The canonical dotted name of a callable expression, with
        import aliases unfolded (``wall`` -> ``time.time``)."""
        parts = dotted_parts(node)
        if parts is None:
            return None
        root = self.aliases.get(parts[0], parts[0])
        return ".".join((root, *parts[1:]))


class FunctionFlow:
    """One forward pass over one function body (or the module body):
    the environment maps local names to taint sets; every expression
    evaluated along the way lands in the shared memo."""

    def __init__(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module,
        module: ModuleDataflow,
        memo: dict[int, frozenset[Taint]] | None = None,
    ) -> None:
        self.func = func
        self.module = module
        self.memo = memo if memo is not None else {}
        self.env: dict[str, frozenset[Taint]] = {}
        self.return_taints: frozenset[Taint] = _EMPTY
        self.return_nodes: list[ast.Return] = []
        body = func.body if isinstance(func.body, list) else []
        self._exec_block(body)

    # -- statements ----------------------------------------------------

    def _exec_block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt)

    def _branch(self, *blocks: list[ast.stmt]) -> None:
        """Run each block on a copy of the environment, then merge the
        copies by key-wise union (a may-analysis join)."""
        merged = dict(self.env)
        for block in blocks:
            saved = self.env
            self.env = dict(saved)
            self._exec_block(block)
            for name, taints in self.env.items():
                merged[name] = merged.get(name, _EMPTY) | taints
            self.env = saved
        self.env = merged

    def _exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taints = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, taints)
        elif isinstance(stmt, ast.AugAssign):
            taints = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                taints = taints | self.env.get(stmt.target.id, _EMPTY)
            self._bind(stmt.target, taints)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._eval(stmt.value))
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            self.return_nodes.append(stmt)
            if stmt.value is not None:
                self.return_taints = self.return_taints | self._eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._branch(stmt.body, stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_taints = self._eval(stmt.iter)
            self._bind(stmt.target, _data_only(iter_taints))
            # Twice: the second pass sees bindings the first created, so
            # loop-carried taint (acc = acc + draw) is propagated.
            self._branch(stmt.body)
            self._branch(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._branch(stmt.body)
            self._branch(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taints = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taints)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._branch(stmt.body)
            for handler in stmt.handlers:
                self._branch(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for value in ast.iter_child_nodes(stmt):
                if isinstance(value, ast.expr):
                    self._eval(value)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        # Nested FunctionDef / ClassDef / Import / Pass / Break /
        # Continue / Global / Nonlocal: no dataflow at this level.

    # -- binding -------------------------------------------------------

    def _bind(self, target: ast.expr, taints: frozenset[Taint]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = frozenset(
                t.hop(f"-> {target.id} (line {target.lineno})") for t in taints
            )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, _data_only(taints))
        elif isinstance(target, ast.Starred):
            self._bind(target.value, _data_only(taints))
        elif isinstance(target, ast.Subscript):
            # d[k] = tainted: the container now carries the taint (weak
            # update -- existing taints stay).
            self._eval(target.slice)
            base = target.value
            if isinstance(base, ast.Name):
                self.env[base.id] = self.env.get(base.id, _EMPTY) | _data_only(
                    taints
                )
        # Attribute targets (self.X = ...) are stores the syntactic
        # rules already see; nothing to track forward here.

    # -- expressions ---------------------------------------------------

    def _eval(self, node: ast.expr) -> frozenset[Taint]:
        taints = self._eval_inner(node)
        self.memo[id(node)] = taints
        return taints

    def _eval_inner(self, node: ast.expr) -> frozenset[Taint]:  # noqa: C901
        if isinstance(node, ast.Constant):
            return _EMPTY
        if isinstance(node, ast.Name):
            local = self.env.get(node.id)
            if local is not None:
                return local  # locals shadow imported names
            # An unbound name may be a from-imported source under an
            # alias: `from time import time as wall` makes a bare
            # `wall` read as `time.time`.
            dotted = self.module.aliases.get(node.id)
            if dotted is not None and "." in dotted:
                return self._source_taints(dotted, node.lineno)
            return _EMPTY
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            taints = _data_only(self._eval(node.left) | self._eval(node.right))
            if isinstance(node.op, ast.Div):
                taints = taints | {
                    Taint(FLOAT, "true division `/`", node.lineno)
                }
            return taints
        if isinstance(node, ast.BoolOp):
            out = _EMPTY
            for value in node.values:
                out = out | self._eval(value)
            return out
        if isinstance(node, ast.UnaryOp):
            return _data_only(self._eval(node.operand))
        if isinstance(node, ast.Compare):
            out = self._eval(node.left)
            for comparator in node.comparators:
                out = out | self._eval(comparator)
            return _data_only(out)
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return self._eval(node.body) | self._eval(node.orelse)
        if isinstance(node, ast.Subscript):
            self._eval(node.slice)
            return self._eval(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = _EMPTY
            for element in node.elts:
                out = out | self._eval(element)
            return _data_only(out)
        if isinstance(node, ast.Dict):
            out = _EMPTY
            for key in node.keys:
                if key is not None:
                    out = out | self._eval(key)
            for value in node.values:
                out = out | self._eval(value)
            return _data_only(out)
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            return self._eval_comprehension(node)
        if isinstance(node, ast.NamedExpr):
            taints = self._eval(node.value)
            self._bind(node.target, taints)
            return taints
        if isinstance(node, ast.JoinedStr):
            out = _EMPTY
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out = out | self._eval(value.value)
            return _data_only(out)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._eval(node.value)
        if isinstance(node, ast.Yield):
            return self._eval(node.value) if node.value is not None else _EMPTY
        if isinstance(node, ast.Lambda):
            return _EMPTY  # own scope; not executed here
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self._eval(part)
            return _EMPTY
        return _EMPTY

    def _eval_attribute(self, node: ast.Attribute) -> frozenset[Taint]:
        parts = dotted_parts(node)
        if parts is not None and parts[0] == "self" and len(parts) >= 2:
            # A self-attribute load: both a data dependency on the
            # attribute and an alias of the attribute object itself.
            source = ".".join(parts[: 2])
            return frozenset(
                {
                    Taint(ATTR, source, node.lineno),
                    Taint(ALIAS, source, node.lineno),
                }
            )
        dotted = self.module.resolve(node)
        if dotted is not None:
            taints = self._source_taints(dotted, node.lineno)
            if taints:
                return taints
        # Attribute of a tracked value: data dependency, and keep any
        # alias (y.b where y aliases self.X is still inside self.X).
        return self._eval(node.value)

    @staticmethod
    def _source_taints(dotted: str, lineno: int) -> frozenset[Taint]:
        """Taints seeded by reading the canonical dotted name *dotted*
        (the shared source tables), empty when it is not a source."""
        root = dotted.split(".")[0]
        if dotted in ENTROPY_SOURCES or root in ENTROPY_ROOTS:
            return frozenset({Taint(ENTROPY, dotted, lineno)})
        leaf = dotted.rsplit(".", 1)[-1]
        if root == "math" and leaf in FLOAT_MATH:
            return frozenset({Taint(FLOAT, dotted, lineno)})
        if root in NUMPY_ROOTS and leaf in FLOAT_NUMPY:
            return frozenset({Taint(FLOAT, dotted, lineno)})
        return _EMPTY

    def _eval_call(self, node: ast.Call) -> frozenset[Taint]:
        func_taints = self._eval(node.func)
        arg_taints = _EMPTY
        for arg in node.args:
            arg_taints = arg_taints | self._eval(arg)
        for keyword in node.keywords:
            arg_taints = arg_taints | self._eval(keyword.value)
        # d.update(other) / d.append(x): the receiver absorbs the
        # argument taints (containers as sinks-then-sources).
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATOR_METHODS
            and isinstance(node.func.value, ast.Name)
        ):
            receiver = node.func.value.id
            self.env[receiver] = self.env.get(receiver, _EMPTY) | _data_only(
                arg_taints
            )
        # float() is itself a float source.
        extra: frozenset[Taint] = _EMPTY
        if isinstance(node.func, ast.Name) and node.func.id == "float":
            extra = frozenset({Taint(FLOAT, "float()", node.lineno)})
        # Calls of local functions / self-methods substitute the callee's
        # return summary (re-anchored at the call line, keeping the
        # callee-side origin in the trace).
        summary = self._summary_for(node)
        if summary:
            extra = extra | frozenset(
                t.hop(f"-> returned to line {node.lineno}") for t in summary
            )
        return _data_only(func_taints | arg_taints) | extra

    def _summary_for(self, node: ast.Call) -> frozenset[Taint]:
        func = node.func
        if isinstance(func, ast.Name):
            return self.module.summaries.get(("", func.id), _EMPTY)
        parts = dotted_parts(func)
        if parts is not None and len(parts) == 2 and parts[0] == "self":
            for (owner, name), summary in self.module.summaries.items():
                if owner and name == parts[1]:
                    return summary
        return _EMPTY

    def _eval_comprehension(self, node: ast.expr) -> frozenset[Taint]:
        saved = dict(self.env)
        try:
            for gen in node.generators:  # type: ignore[attr-defined]
                taints = self._eval(gen.iter)
                self._bind(gen.target, _data_only(taints))
                for condition in gen.ifs:
                    self._eval(condition)
            if isinstance(node, ast.DictComp):
                out = self._eval(node.key) | self._eval(node.value)
            else:
                out = self._eval(node.elt)  # type: ignore[attr-defined]
            return _data_only(out)
        finally:
            self.env = saved
