"""R003: snapshot completeness -- every ``__init__`` attribute must
actually *flow into* the state ``snapshot_state`` returns (or be
restored by ``restore_state``).

PR 3 fixed a shipped bug of exactly this shape: the engine's
``snapshot_state`` captured only its scalars, so a restored shard
silently lost every in-flight task and would re-issue their indices --
breaking the no-double-issue accountability guarantee.

PR 4's syntactic version matched attribute *names*: any ``self.X``
mention anywhere inside ``snapshot_state`` counted as persisted.  That
left a blind spot the ROADMAP called out: a method that **reads** an
attribute but **drops** it from the returned dict -- ``count =
len(self._outstanding)`` followed by ``return {"count": count_of_other}``
-- passed.  v2 closes it with dataflow: an attribute counts as persisted
only when a taint rooted at ``self.X`` reaches one of
``snapshot_state``'s ``return`` expressions (directly, through locals,
through container writes like ``state["x"] = ...``, or through the
return summary of a ``self._helper()`` call).  ``restore_state`` keeps
the permissive any-touch rule: a restore that assigns or feeds ``self.X``
in any way is restoring it.

Genuinely transient attributes -- event-bus wiring, codecs,
constructor-supplied configuration that the owner snapshots -- are
declared with ``# reprolint: allow[R003]`` on the assignment line, which
doubles as documentation of *why* the attribute may be lost on restore.

v3 adds the *delta-protocol* pass for the incremental-checkpoint pair
``snapshot_delta`` / ``apply_delta``.  A complete full snapshot no
longer proves anything about the delta path: an attribute whose taint
reaches ``snapshot_delta``'s return but that ``apply_delta`` never
touches is state every incrementally restored replica silently drops;
an attribute ``apply_delta`` *writes* but ``snapshot_delta`` never
reads is replica state no delta can ever carry.  Both directions are
findings, anchored (like the full-snapshot pass) on the ``__init__``
assignment line so one waiver documents one attribute.

The v3 engine contributes the class-level attr-alias map
(``self._t = self._profiles`` makes ``_t`` and ``_profiles`` one
storage location): persisting, emitting, or applying *either* spelling
of an aliased pair counts for both, in the full-snapshot and delta
passes alike -- strictly fewer false positives, since the underlying
object round-trips whichever name touched it.
"""

from __future__ import annotations

import ast

from repro.staticcheck.checkers import Checker
from repro.staticcheck.config import ReprolintConfig
from repro.staticcheck.dataflow import ATTR
from repro.staticcheck.loader import SourceModule
from repro.staticcheck.model import Finding
from repro.staticcheck.summaries import class_attr_aliases

__all__ = ["SnapshotCompletenessChecker"]


def _expand_aliases(attrs: set[str], alias_map: dict[str, str]) -> set[str]:
    """Close *attrs* over the class attr-alias groups: covering one
    spelling of an aliased storage location covers them all."""
    out = set(attrs)
    for alias, root in alias_map.items():
        if alias in attrs:
            out.add(root)
        if root in attrs:
            out.add(alias)
    return out


SNAPSHOT_METHODS = ("snapshot_state", "restore_state")
DELTA_METHODS = ("snapshot_delta", "apply_delta")

# Container-method names that mutate their receiver: a call
# ``self.X.add(...)`` counts as writing ``self.X``.
_MUTATING_CALLS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)


def _self_attr_assignments(func: ast.FunctionDef) -> dict[str, int]:
    """``self.X = ...`` targets in *func*, name -> first assignment line."""
    out: dict[str, int] = {}

    def note(target: ast.expr, lineno: int) -> None:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            out.setdefault(target.attr, lineno)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                note(element, lineno)

    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                note(target, node.lineno)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            note(node.target, node.lineno)
    return out


def _self_attrs_touched(func: ast.FunctionDef) -> set[str]:
    """Every ``self.X`` attribute referenced (any context) in *func*."""
    touched: set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            touched.add(node.attr)
    return touched


def _self_attrs_touched_deep(
    methods: dict[str, ast.FunctionDef], func: ast.FunctionDef
) -> set[str]:
    """Any-touch closure over same-class helpers: every ``self.X``
    referenced by *func* directly or inside another method of the class
    that *func* mentions (``self.set_rng_state(...)`` counts as touching
    whatever ``set_rng_state`` touches)."""
    touched: set[str] = set()
    expanded: set[str] = set()
    stack = [func]
    while stack:
        current = stack.pop()
        for attr in _self_attrs_touched(current):
            touched.add(attr)
            if attr in methods and attr not in expanded:
                expanded.add(attr)
                stack.append(methods[attr])
    return touched


def _root_self_attr(node: ast.expr) -> str | None:
    """The ``X`` of a ``self.X``-rooted expression, unwrapping
    subscripts (``self.X[k]``, ``self.X[k][j]``)."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _self_attr_writes(func: ast.FunctionDef) -> dict[str, int]:
    """``self.X`` attributes *func* writes, name -> first write line:
    plain / augmented / subscript-target assignment, or a mutating
    container-method call (``self.X.update(...)``)."""
    out: dict[str, int] = {}

    def note(target: ast.expr, lineno: int) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                note(element, lineno)
            return
        attr = _root_self_attr(target)
        if attr is not None:
            out.setdefault(attr, lineno)

    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                note(target, node.lineno)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            note(node.target, node.lineno)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_CALLS
        ):
            attr = _root_self_attr(node.func.value)
            if attr is not None:
                out.setdefault(attr, node.lineno)
    return out


def _is_opaque(func: ast.FunctionDef) -> bool:
    """``snapshot_state`` bodies the flow analysis cannot see through:
    whole-object reflection (``self.__dict__`` / ``vars(self)``).  Fall
    back to the permissive any-touch rule rather than guess."""
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and node.attr == "__dict__":
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "vars"
        ):
            return True
    return False


class SnapshotCompletenessChecker(Checker):
    code = "R003"
    name = "snapshot-completeness"
    summary = (
        "__init__ attributes that never flow into the state returned by "
        "snapshot_state (the PR 3 scalars-only snapshot bug)"
    )

    def check(self, module: SourceModule, config: ReprolintConfig) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                item.name: item
                for item in node.body
                if isinstance(item, ast.FunctionDef)
            }
            snapshotters = [methods[n] for n in SNAPSHOT_METHODS if n in methods]
            init = methods.get("__init__")
            if init is None:
                continue
            init_attrs = _self_attr_assignments(init)
            findings.extend(
                self._check_delta_pair(module, node, methods, init_attrs)
            )
            if not snapshotters:
                continue

            persisted: set[str] = set()
            read_not_returned: set[str] = set()
            snapshot = methods.get("snapshot_state")
            restore = methods.get("restore_state")
            if restore is not None:
                persisted |= _self_attrs_touched(restore)
            if snapshot is not None:
                returned = self._attrs_reaching_return(module, snapshot)
                if returned is None:
                    persisted |= _self_attrs_touched(snapshot)
                else:
                    persisted |= returned
                    read_not_returned = _self_attrs_touched(snapshot) - returned
            persisted = _expand_aliases(persisted, class_attr_aliases(node))

            which = "/".join(m.name for m in snapshotters)
            for attr, lineno in sorted(init_attrs.items(), key=lambda kv: kv[1]):
                if attr in persisted:
                    continue
                if attr in read_not_returned:
                    message = (
                        f"{node.name}.snapshot_state reads self.{attr} but "
                        "drops it from the returned state -- a restored "
                        "instance silently loses it"
                    )
                else:
                    message = (
                        f"{node.name}.__init__ sets self.{attr} but {which} "
                        "never persists it -- a restored instance silently "
                        "loses this state"
                    )
                findings.append(self.finding(module, lineno, message))
        return findings

    def _check_delta_pair(
        self,
        module: SourceModule,
        node: ast.ClassDef,
        methods: dict[str, ast.FunctionDef],
        init_attrs: dict[str, int],
    ) -> list[Finding]:
        """The delta-protocol pass: both directions of the
        ``snapshot_delta`` / ``apply_delta`` contract, for classes that
        implement the pair."""
        snapshot_delta = methods.get("snapshot_delta")
        apply_delta = methods.get("apply_delta")
        if snapshot_delta is None or apply_delta is None:
            return []
        findings: list[Finding] = []
        alias_map = class_attr_aliases(node)
        emitted = self._attrs_reaching_return(module, snapshot_delta)
        if emitted is None:
            emitted = _self_attrs_touched_deep(methods, snapshot_delta)
        emitted = _expand_aliases(emitted, alias_map)
        applied = _expand_aliases(
            _self_attrs_touched_deep(methods, apply_delta), alias_map
        )
        read_by_snapshot = _expand_aliases(
            _self_attrs_touched_deep(methods, snapshot_delta), alias_map
        )
        written_by_apply = _expand_aliases(
            set(_self_attr_writes(apply_delta)), alias_map
        )
        for attr, lineno in sorted(init_attrs.items(), key=lambda kv: kv[1]):
            if attr in emitted and attr not in applied:
                findings.append(
                    self.finding(
                        module,
                        lineno,
                        f"{node.name}.snapshot_delta emits self.{attr} but "
                        "apply_delta never applies it -- an incrementally "
                        "restored replica silently loses this state",
                    )
                )
            elif attr in written_by_apply and attr not in read_by_snapshot:
                findings.append(
                    self.finding(
                        module,
                        lineno,
                        f"{node.name}.apply_delta writes self.{attr} but "
                        "snapshot_delta never emits it -- no delta can "
                        "carry this state to a replica",
                    )
                )
        return findings

    @staticmethod
    def _attrs_reaching_return(
        module: SourceModule, snapshot: ast.FunctionDef
    ) -> set[str] | None:
        """The ``self.X`` names whose values flow into a ``return`` of
        *snapshot*, or ``None`` when the body is opaque to the analysis
        (reflection, no return statement)."""
        if _is_opaque(snapshot):
            return None
        flow = module.dataflow().flow(snapshot)
        if flow is None or not flow.return_nodes:
            return None
        return {
            taint.source.split(".", 1)[1]
            for taint in flow.return_taints
            if taint.kind == ATTR and taint.source.startswith("self.")
        }
