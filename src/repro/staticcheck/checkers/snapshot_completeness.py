"""R003: snapshot completeness -- every ``__init__`` attribute must ride
in ``snapshot_state``/``restore_state``.

PR 3 fixed a shipped bug of exactly this shape: the engine's
``snapshot_state`` captured only its scalars, so a restored shard
silently lost every in-flight task and would re-issue their indices --
breaking the no-double-issue accountability guarantee.  The fix was
mechanical (reference every component in the snapshot); this checker
makes the mechanical property permanent.

For every class that defines ``snapshot_state`` or ``restore_state``
*and* an ``__init__``, each ``self.X`` assigned in ``__init__`` must be
mentioned (read or written, directly) somewhere in ``snapshot_state`` or
``restore_state``.  Genuinely transient attributes -- event-bus wiring,
codecs, constructor-supplied configuration that the owner snapshots --
are declared with ``# reprolint: allow[R003]`` on the assignment line,
which doubles as documentation of *why* the attribute may be lost on
restore.
"""

from __future__ import annotations

import ast

from repro.staticcheck.checkers import Checker
from repro.staticcheck.config import ReprolintConfig
from repro.staticcheck.loader import SourceModule
from repro.staticcheck.model import Finding

__all__ = ["SnapshotCompletenessChecker"]

SNAPSHOT_METHODS = ("snapshot_state", "restore_state")


def _self_attr_assignments(func: ast.FunctionDef) -> dict[str, int]:
    """``self.X = ...`` targets in *func*, name -> first assignment line."""
    out: dict[str, int] = {}

    def note(target: ast.expr, lineno: int) -> None:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            out.setdefault(target.attr, lineno)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                note(element, lineno)

    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                note(target, node.lineno)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            note(node.target, node.lineno)
    return out


def _self_attrs_touched(func: ast.FunctionDef) -> set[str]:
    """Every ``self.X`` attribute referenced (any context) in *func*."""
    touched: set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            touched.add(node.attr)
    return touched


class SnapshotCompletenessChecker(Checker):
    code = "R003"
    name = "snapshot-completeness"
    summary = (
        "__init__ attributes missing from snapshot_state/restore_state "
        "(the PR 3 scalars-only snapshot bug)"
    )

    def check(self, module: SourceModule, config: ReprolintConfig) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                item.name: item
                for item in node.body
                if isinstance(item, ast.FunctionDef)
            }
            snapshotters = [methods[n] for n in SNAPSHOT_METHODS if n in methods]
            init = methods.get("__init__")
            if not snapshotters or init is None:
                continue
            persisted: set[str] = set()
            for method in snapshotters:
                persisted |= _self_attrs_touched(method)
            which = "/".join(m.name for m in snapshotters)
            for attr, lineno in sorted(
                _self_attr_assignments(init).items(), key=lambda kv: kv[1]
            ):
                if attr not in persisted:
                    findings.append(
                        self.finding(
                            module, lineno,
                            f"{node.name}.__init__ sets self.{attr} but "
                            f"{which} never touches it -- a restored "
                            "instance silently loses this state",
                        )
                    )
        return findings
