"""R005: event discipline -- state transitions publish typed events.

The metrics layer, the simulation driver, and the forensic event log all
observe the service exclusively through the typed event bus; PR 2's
refactor removed every direct read of private engine state.  That
architecture only stays honest if *every* state transition actually
publishes: a mutating method that silently skips the bus reintroduces
invisible state changes that metrics and replay tooling cannot see.

For each class named in ``r005.event-classes``, every method (except
``__init__``, which wires rather than transitions) that mutates instance
state -- assigns, augments, or deletes ``self.X`` or ``self.X[...]`` --
must contain a ``*.publish(...)`` call, or carry a reviewed
``# reprolint: allow[R005]`` on its ``def`` line explaining why the
mutation is not an observable transition (e.g. ``restore_state`` must
*not* re-publish history, or the mutation is journaled by an owner).
"""

from __future__ import annotations

import ast

from repro.staticcheck.checkers import Checker
from repro.staticcheck.config import ReprolintConfig
from repro.staticcheck.loader import SourceModule
from repro.staticcheck.model import Finding

__all__ = ["EventDisciplineChecker"]


def _is_self_store(target: ast.expr) -> bool:
    """``self.X`` or ``self.X[...]`` (or a tuple/list containing one)."""
    if isinstance(target, ast.Attribute):
        return isinstance(target.value, ast.Name) and target.value.id == "self"
    if isinstance(target, ast.Subscript):
        return _is_self_store(target.value)
    if isinstance(target, (ast.Tuple, ast.List)):
        return any(_is_self_store(element) for element in target.elts)
    return False


def _mutates_self(method: ast.FunctionDef) -> bool:
    for node in ast.walk(method):
        if isinstance(node, ast.Assign):
            if any(_is_self_store(t) for t in node.targets):
                return True
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if _is_self_store(node.target):
                return True
        elif isinstance(node, ast.Delete):
            if any(_is_self_store(t) for t in node.targets):
                return True
    return False


def _publishes(method: ast.FunctionDef) -> bool:
    for node in ast.walk(method):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "publish"
        ):
            return True
    return False


class EventDisciplineChecker(Checker):
    code = "R005"
    name = "event-discipline"
    summary = (
        "mutating methods of the engine classes that emit no typed event"
    )

    def check(self, module: SourceModule, config: ReprolintConfig) -> list[Finding]:
        if not config.event_classes:
            return []
        watched = set(config.event_classes)
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or node.name not in watched:
                continue
            for item in node.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                if item.name == "__init__":
                    continue
                if _mutates_self(item) and not _publishes(item):
                    findings.append(
                        self.finding(
                            module, item.lineno,
                            f"{node.name}.{item.name} mutates engine state "
                            "but publishes no typed event; observers and "
                            "replay tooling cannot see this transition",
                        )
                    )
        return findings
