"""R005: event discipline -- state transitions publish typed events.

The metrics layer, the simulation driver, and the forensic event log all
observe the service exclusively through the typed event bus; PR 2's
refactor removed every direct read of private engine state.  That
architecture only stays honest if *every* state transition actually
publishes: a mutating method that silently skips the bus reintroduces
invisible state changes that metrics and replay tooling cannot see.

PR 4's syntactic version only saw direct stores (``self.X = ...``,
``self.X[...] = ...``, ``del self.X``).  The ROADMAP blind spot: a
method that mutates *through a call* -- ``self._profiles.clear()``,
``self._queue.append(task)``, ``setattr(self, name, value)`` -- was
invisible, and so was the laundered form ``table = self._profiles;
table.clear()``.  v2 closes both with the dataflow engine's alias
tracking: a mutator-method call (``.clear()/.append()/.pop()/.update()``
and friends) whose receiver *is* a ``self`` attribute (directly or via a
local alias -- the ``ALIAS`` taint kind, which deliberately does not
propagate through calls, so mutating a *copy* like
``self.profiles().clear()`` stays legal) counts as a state mutation.

v3 closes the two remaining blind spots.  (1) *Helper-delegated
mutation*: ``self._purge(self._profiles)`` or ``util.purge(self._t)``
where the callee's summary says it mutates that parameter's object --
the project-wide mutation fixpoint (:mod:`repro.staticcheck.summaries`)
makes the delegation visible whichever module the helper lives in.
(2) *Stored aliases across methods*: ``self._t = self._profiles`` in
``__init__`` followed by ``self._t.clear()`` in a later method is a
mutation of ``self._profiles``; the class-level attr-alias map names
the aliased root in the finding so the reviewer sees both spellings.

For each class named in ``r005.event-classes``, every such mutating
method (except ``__init__``, which wires rather than transitions) must
contain a ``*.publish(...)`` call, or carry a reviewed
``# reprolint: allow[R005]`` on its ``def`` line explaining why the
mutation is not an observable transition (e.g. ``restore_state`` must
*not* re-publish history, or the mutation is journaled by an owner).
"""

from __future__ import annotations

import ast

from repro.staticcheck.checkers import Checker
from repro.staticcheck.config import ReprolintConfig
from repro.staticcheck.dataflow import ALIAS, MUTATOR_METHODS, ModuleDataflow
from repro.staticcheck.loader import SourceModule
from repro.staticcheck.model import Finding
from repro.staticcheck.summaries import class_attr_aliases

__all__ = ["EventDisciplineChecker"]


def _alias_note(source: str, attr_aliases: dict[str, str]) -> str:
    """`` (self._t aliases self._profiles)`` when the mutated attribute
    is a stored alias of another, else ""."""
    if source.startswith("self."):
        attr = source[5:]
        root = attr_aliases.get(attr)
        if root is not None:
            return f" ({source} aliases self.{root})"
    return ""


def _is_self_store(target: ast.expr) -> bool:
    """``self.X`` or ``self.X[...]`` (or a tuple/list containing one)."""
    if isinstance(target, ast.Attribute):
        return isinstance(target.value, ast.Name) and target.value.id == "self"
    if isinstance(target, ast.Subscript):
        return _is_self_store(target.value)
    if isinstance(target, (ast.Tuple, ast.List)):
        return any(_is_self_store(element) for element in target.elts)
    return False


def _direct_mutation(method: ast.FunctionDef) -> ast.AST | None:
    """The first direct ``self`` store in *method* (the PR 4 rule)."""
    for node in ast.walk(method):
        if isinstance(node, ast.Assign):
            if any(_is_self_store(t) for t in node.targets):
                return node
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if _is_self_store(node.target):
                return node
        elif isinstance(node, ast.Delete):
            if any(_is_self_store(t) for t in node.targets):
                return node
    return None


def _mutating_call(
    method: ast.FunctionDef, dataflow: ModuleDataflow
) -> tuple[ast.Call, str, tuple[str, ...]] | None:
    """The first call in *method* that mutates ``self`` state: a mutator
    method whose receiver aliases a ``self`` attribute, or
    ``setattr``/``delattr`` on ``self`` (or an alias of self state).
    Returns ``(call, description, trace)``."""
    for node in ast.walk(method):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS:
            aliases = sorted(
                (t for t in dataflow.taints(func) if t.kind == ALIAS),
                key=lambda t: (t.line, t.source),
            )
            if aliases:
                origin = aliases[0]
                return (
                    node,
                    f"{origin.source}.{func.attr}(...)",
                    origin.trace(),
                )
        elif isinstance(func, ast.Name) and func.id in ("setattr", "delattr"):
            if node.args and isinstance(node.args[0], ast.Name) and (
                node.args[0].id == "self"
            ):
                return (node, f"{func.id}(self, ...)", ())
            if node.args:
                aliases = sorted(
                    (t for t in dataflow.taints(node.args[0]) if t.kind == ALIAS),
                    key=lambda t: (t.line, t.source),
                )
                if aliases:
                    origin = aliases[0]
                    return (
                        node,
                        f"{func.id} on {origin.source}",
                        origin.trace(),
                    )
    return None


def _mutating_helper_call(
    method: ast.FunctionDef, dataflow: ModuleDataflow
) -> tuple[ast.Call, str, tuple[str, ...]] | None:
    """The first call in *method* that passes a ``self``-attribute
    object to a callee whose summary mutates that parameter --
    ``self._purge(self._profiles)``, ``util.purge(self._t)``.  Needs a
    project oracle; returns ``None`` without one."""
    for node in ast.walk(method):
        if not isinstance(node, ast.Call):
            continue
        for index in sorted(dataflow.mutated_args(node)):
            if index >= len(node.args):
                continue
            aliases = sorted(
                (t for t in dataflow.taints(node.args[index]) if t.kind == ALIAS),
                key=lambda t: (t.line, t.source),
            )
            if not aliases:
                continue
            origin = aliases[0]
            target = dataflow.call_target(node)
            name = target[0].lstrip(":") if target is not None else "a helper"
            return (
                node,
                f"{name}({origin.source}, ...) which mutates it",
                origin.trace(),
            )
    return None


def _publishes(method: ast.FunctionDef) -> bool:
    for node in ast.walk(method):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "publish"
        ):
            return True
    return False


class EventDisciplineChecker(Checker):
    code = "R005"
    name = "event-discipline"
    summary = (
        "mutating methods of the engine classes (direct stores, mutating "
        "calls like .clear()/.append(), setattr) that emit no typed event"
    )

    def check(self, module: SourceModule, config: ReprolintConfig) -> list[Finding]:
        if not config.event_classes:
            return []
        watched = set(config.event_classes)
        findings: list[Finding] = []
        dataflow: ModuleDataflow | None = None
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or node.name not in watched:
                continue
            attr_aliases = class_attr_aliases(node)
            for item in node.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                if item.name == "__init__":
                    continue
                if _publishes(item):
                    continue
                if _direct_mutation(item) is not None:
                    findings.append(
                        self.finding(
                            module, item.lineno,
                            f"{node.name}.{item.name} mutates engine state "
                            "but publishes no typed event; observers and "
                            "replay tooling cannot see this transition",
                        )
                    )
                    continue
                if dataflow is None:
                    dataflow = module.dataflow()
                hit = _mutating_call(item, dataflow)
                if hit is None:
                    hit = _mutating_helper_call(item, dataflow)
                if hit is not None:
                    _call, description, trace = hit
                    note = ""
                    for taint_source in trace[:1]:
                        # trace[0] is "self.X (line N)"; pull the attr.
                        source = taint_source.split(" (", 1)[0]
                        note = _alias_note(source, attr_aliases)
                    findings.append(
                        self.finding(
                            module, item.lineno,
                            f"{node.name}.{item.name} mutates engine state "
                            f"through {description}{note} but publishes no "
                            "typed event; observers and replay tooling "
                            "cannot see this transition",
                            trace=trace,
                        )
                    )
        return findings
