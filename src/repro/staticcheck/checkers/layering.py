"""R004: layering -- the import DAG, private state, dead imports.

Three sub-checks, all previously enforced piecemeal (ruff config plus an
ad-hoc AST fallback in ``tests/test_lint_gate.py``, webcompute-only) and
now unified tree-wide:

* **Import DAG** -- ``r004.allowed-imports`` maps a dotted module prefix
  to the internal prefixes it may import (longest prefix wins, so a
  single module can carve out a wider allowance than its package).  The
  pairing layer importing ``arrays`` or ``webcompute`` is an
  architecture regression, not a style problem: it would let service
  concerns leak into the code whose exactness everything else rests on.
  Both top-level ``import``\\ s and lazy in-function imports are checked;
  a deliberate lazy inversion carries ``# reprolint: allow[R004]``.
* **Private state** -- ``r004.private-attrs`` names attributes owned by
  one module (the ledger's ``_records``/``_tasks``: the system of
  record).  Any ``X._records`` where ``X`` is not ``self``/``cls``,
  outside the owning module, is flagged.
* **Dead imports** -- an import never referenced (conservatively: no
  ``Name``/attribute-root use, no mention in a string-literal type
  annotation, not re-exported via ``__all__``).  ``__init__.py``
  re-export hubs are exempt.
"""

from __future__ import annotations

import ast
import re

from repro.staticcheck.checkers import Checker
from repro.staticcheck.config import ReprolintConfig
from repro.staticcheck.loader import SourceModule
from repro.staticcheck.model import Finding

__all__ = ["LayeringChecker"]


class LayeringChecker(Checker):
    code = "R004"
    name = "layering"
    summary = (
        "import-DAG violations, cross-module private-attribute access, "
        "and dead imports"
    )

    def check(self, module: SourceModule, config: ReprolintConfig) -> list[Finding]:
        findings: list[Finding] = []
        self._check_import_dag(module, config, findings)
        self._check_private_attrs(module, config, findings)
        self._check_dead_imports(module, findings)
        return findings

    # -- import DAG ----------------------------------------------------

    def _imported_modules(self, module: SourceModule) -> list[tuple[str, int]]:
        """Every imported module as ``(dotted_name, line)``; relative
        imports are resolved against the module's own dotted name."""
        out: list[tuple[str, int]] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    out.append((alias.name, node.lineno))
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    parts = module.name.split(".")
                    # level 1 = current package; each extra level climbs.
                    base = parts[: len(parts) - node.level]
                    target = ".".join(base + ([node.module] if node.module else []))
                else:
                    target = node.module or ""
                if target:
                    out.append((target, node.lineno))
        return out

    def _check_import_dag(
        self,
        module: SourceModule,
        config: ReprolintConfig,
        findings: list[Finding],
    ) -> None:
        allowance = config.import_allowance(module.name)
        if allowance is None:
            return
        root = config.internal_root
        for target, lineno in self._imported_modules(module):
            if not (target == root or target.startswith(root + ".")):
                continue  # external/stdlib imports are out of scope
            if any(
                target == prefix or target.startswith(prefix + ".")
                for prefix in allowance
            ):
                continue
            findings.append(
                self.finding(
                    module, lineno,
                    f"`{module.name}` imports `{target}`, outside its "
                    f"layer's allowance ({', '.join(allowance)})",
                )
            )

    # -- private cross-module state ------------------------------------

    def _check_private_attrs(
        self,
        module: SourceModule,
        config: ReprolintConfig,
        findings: list[Finding],
    ) -> None:
        if not config.private_attrs:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            owner = config.private_attrs.get(node.attr)
            if owner is None or module.name == owner:
                continue
            value = node.value
            if isinstance(value, ast.Name) and value.id in ("self", "cls"):
                continue
            findings.append(
                self.finding(
                    module, node.lineno,
                    f".{node.attr} is private state of `{owner}`; use its "
                    "public read API",
                )
            )

    # -- dead imports --------------------------------------------------

    def _check_dead_imports(
        self, module: SourceModule, findings: list[Finding]
    ) -> None:
        if module.path.name == "__init__.py":
            return  # re-export hubs: every import is intentional surface
        imported: dict[str, int] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = (alias.asname or alias.name).split(".")[0]
                    imported.setdefault(name, node.lineno)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    imported.setdefault(alias.asname or alias.name, node.lineno)
        if not imported:
            return
        used: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            if isinstance(node, ast.Name):
                used.add(node.id)
            elif isinstance(node, ast.Attribute):
                root: ast.expr = node
                while isinstance(root, ast.Attribute):
                    root = root.value
                if isinstance(root, ast.Name):
                    used.add(root.id)
        # Quoted annotations ("AnalysisResult") reference an import that
        # the AST only sees as a string constant; count the identifiers
        # inside every annotation-position string as usages.
        for annotation in self._string_annotations(module.tree):
            used.update(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", annotation))
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == "__all__":
                        for elt in ast.walk(node.value):
                            if isinstance(elt, ast.Constant) and isinstance(
                                elt.value, str
                            ):
                                used.add(elt.value)
        for name, lineno in sorted(imported.items(), key=lambda kv: kv[1]):
            if name not in used:
                findings.append(
                    self.finding(
                        module, lineno,
                        f"unused import `{name}` (dead imports hide real "
                        "dependencies)",
                    )
                )

    @staticmethod
    def _string_annotations(tree: ast.AST) -> list[str]:
        out: list[str] = []

        def collect(annotation: ast.expr | None) -> None:
            if annotation is None:
                return
            for sub in ast.walk(annotation):
                if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                    out.append(sub.value)

        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign):
                collect(node.annotation)
            elif isinstance(node, ast.arg):
                collect(node.annotation)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                collect(node.returns)
        return out
