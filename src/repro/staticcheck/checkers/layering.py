"""R004: layering -- the import DAG, private state, dead imports, and
(new in v2) cycles among the allowances themselves.

Four sub-checks, the first three previously enforced piecemeal (ruff
config plus an ad-hoc AST fallback in ``tests/test_lint_gate.py``,
webcompute-only) and now unified tree-wide:

* **Import DAG** -- ``r004.allowed-imports`` maps a dotted module prefix
  to the internal prefixes it may import (longest prefix wins, so a
  single module can carve out a wider allowance than its package).  The
  pairing layer importing ``arrays`` or ``webcompute`` is an
  architecture regression, not a style problem: it would let service
  concerns leak into the code whose exactness everything else rests on.
  Both top-level ``import``\\ s and lazy in-function imports are checked;
  a deliberate lazy inversion carries ``# reprolint: allow[R004]``.
* **Private state** -- ``r004.private-attrs`` names attributes owned by
  one module (the ledger's ``_records``/``_tasks``: the system of
  record).  Any ``X._records`` where ``X`` is not ``self``/``cls``,
  outside the owning module, is flagged.
* **Dead imports** -- an import never referenced (conservatively: no
  ``Name``/attribute-root use, no mention in a string-literal type
  annotation, not re-exported via ``__all__``).  ``__init__.py``
  re-export hubs are exempt.
* **Allowance cycles** (project-level, run once per analysis) -- the
  ``allowed-imports`` table *is* the declared layer DAG, and nothing in
  the per-module checks stops the table itself from drifting into ``A
  allows B, B allows A``: each individual import then still passes while
  the architecture silently stops being layered.  v2 builds the graph
  whose nodes are the allowance *keys* and whose edges are exact-key
  grants, and reports every cycle.  Edges are exact-match only: a
  narrower carve-out key (``repro.core.registry`` overriding
  ``repro.core`` so the registry may import the APF catalogue it
  registers) is a reviewed longest-prefix escape hatch, not a layer
  granting a layer.  These findings anchor in ``pyproject.toml`` and are
  deliberately not suppressible -- a cyclic layer declaration has no
  correct source line to waive.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.staticcheck.checkers import Checker
from repro.staticcheck.config import ReprolintConfig
from repro.staticcheck.loader import SourceModule, module_imports
from repro.staticcheck.model import Finding

__all__ = ["LayeringChecker", "allowance_cycles"]


def allowance_cycles(allowed_imports: dict[str, tuple[str, ...]]) -> list[list[str]]:
    """Every cycle in the allowance-key graph, as key lists (each cycle
    reported once, rotated to start at its smallest key; the closing hop
    back to the start is implicit)."""
    keys = set(allowed_imports)
    edges: dict[str, list[str]] = {
        key: sorted(
            prefix
            for prefix in allowed_imports[key]
            if prefix != key and prefix in keys
        )
        for key in keys
    }
    cycles: list[list[str]] = []
    seen: set[tuple[str, ...]] = set()

    def walk(node: str, stack: list[str], on_stack: set[str]) -> None:
        stack.append(node)
        on_stack.add(node)
        for succ in edges[node]:
            if succ in on_stack:
                cycle = stack[stack.index(succ):]
                pivot = cycle.index(min(cycle))
                canonical = tuple(cycle[pivot:] + cycle[:pivot])
                if canonical not in seen:
                    seen.add(canonical)
                    cycles.append(list(canonical))
            elif succ not in visited:
                walk(succ, stack, on_stack)
        stack.pop()
        on_stack.discard(node)
        visited.add(node)

    visited: set[str] = set()
    for key in sorted(keys):
        if key not in visited:
            walk(key, [], set())
    return sorted(cycles)


class LayeringChecker(Checker):
    code = "R004"
    name = "layering"
    summary = (
        "import-DAG violations, cross-module private-attribute access, "
        "and dead imports"
    )

    def check(self, module: SourceModule, config: ReprolintConfig) -> list[Finding]:
        findings: list[Finding] = []
        self._check_import_dag(module, config, findings)
        self._check_private_attrs(module, config, findings)
        self._check_dead_imports(module, findings)
        return findings

    def check_project(
        self, config: ReprolintConfig, config_path: Path | None
    ) -> list[Finding]:
        """Cycles among the ``allowed-imports`` keys (see module
        docstring): one finding per cycle, anchored at the first cycle
        key's line in the config file."""
        findings: list[Finding] = []
        path = str(config_path) if config_path is not None else "<config>"
        config_lines: list[str] = []
        if config_path is not None and config_path.is_file():
            config_lines = config_path.read_text().splitlines()
        for cycle in allowance_cycles(config.allowed_imports):
            lineno = 1
            for number, line in enumerate(config_lines, start=1):
                if f'"{cycle[0]}"' in line and "=" in line:
                    lineno = number
                    break
            loop = " -> ".join((*cycle, cycle[0]))
            findings.append(
                Finding(
                    rule=self.code,
                    path=path,
                    line=lineno,
                    message=(
                        f"import allowances form a cycle ({loop}); the "
                        "declared layer graph must stay acyclic -- remove "
                        "one grant or carve out a narrower sub-module key"
                    ),
                )
            )
        return findings

    # -- import DAG ----------------------------------------------------

    def _imported_modules(self, module: SourceModule) -> list[tuple[str, int]]:
        """Every imported module as ``(dotted_name, line)``; relative
        imports are resolved against the module's own dotted name."""
        return module_imports(module.tree, module.name)

    def _check_import_dag(
        self,
        module: SourceModule,
        config: ReprolintConfig,
        findings: list[Finding],
    ) -> None:
        allowance = config.import_allowance(module.name)
        if allowance is None:
            return
        root = config.internal_root
        for target, lineno in self._imported_modules(module):
            if not (target == root or target.startswith(root + ".")):
                continue  # external/stdlib imports are out of scope
            if any(
                target == prefix or target.startswith(prefix + ".")
                for prefix in allowance
            ):
                continue
            findings.append(
                self.finding(
                    module, lineno,
                    f"`{module.name}` imports `{target}`, outside its "
                    f"layer's allowance ({', '.join(allowance)})",
                )
            )

    # -- private cross-module state ------------------------------------

    def _check_private_attrs(
        self,
        module: SourceModule,
        config: ReprolintConfig,
        findings: list[Finding],
    ) -> None:
        if not config.private_attrs:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            owner = config.private_attrs.get(node.attr)
            if owner is None or module.name == owner:
                continue
            value = node.value
            if isinstance(value, ast.Name) and value.id in ("self", "cls"):
                continue
            findings.append(
                self.finding(
                    module, node.lineno,
                    f".{node.attr} is private state of `{owner}`; use its "
                    "public read API",
                )
            )

    # -- dead imports --------------------------------------------------

    def _check_dead_imports(
        self, module: SourceModule, findings: list[Finding]
    ) -> None:
        if module.path.name == "__init__.py":
            return  # re-export hubs: every import is intentional surface
        imported: dict[str, int] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = (alias.asname or alias.name).split(".")[0]
                    imported.setdefault(name, node.lineno)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    imported.setdefault(alias.asname or alias.name, node.lineno)
        if not imported:
            return
        used: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            if isinstance(node, ast.Name):
                used.add(node.id)
            elif isinstance(node, ast.Attribute):
                root: ast.expr = node
                while isinstance(root, ast.Attribute):
                    root = root.value
                if isinstance(root, ast.Name):
                    used.add(root.id)
        # Quoted annotations ("AnalysisResult") reference an import that
        # the AST only sees as a string constant; count the identifiers
        # inside every annotation-position string as usages.
        for annotation in self._string_annotations(module.tree):
            used.update(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", annotation))
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == "__all__":
                        for elt in ast.walk(node.value):
                            if isinstance(elt, ast.Constant) and isinstance(
                                elt.value, str
                            ):
                                used.add(elt.value)
        for name, lineno in sorted(imported.items(), key=lambda kv: kv[1]):
            if name not in used:
                findings.append(
                    self.finding(
                        module, lineno,
                        f"unused import `{name}` (dead imports hide real "
                        "dependencies)",
                    )
                )

    @staticmethod
    def _string_annotations(tree: ast.AST) -> list[str]:
        out: list[str] = []

        def collect(annotation: ast.expr | None) -> None:
            if annotation is None:
                return
            for sub in ast.walk(annotation):
                if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                    out.append(sub.value)

        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign):
                collect(node.annotation)
            elif isinstance(node, ast.arg):
                collect(node.annotation)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                collect(node.returns)
        return out
