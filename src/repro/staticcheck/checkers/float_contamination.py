"""R001: no float-producing operation inside a module declared exact.

The repository's central correctness property is that ``pair``/``unpair``
and the attribution chain ``unpair o APF^-1`` are *integer-exact at any
magnitude*.  Python floats (and numpy float dtypes) carry a 53-bit
mantissa; one stray ``/`` or ``np.sqrt`` on the exact path silently
corrupts every address beyond ``2**53`` -- exactly the int64 -> float64
list-promotion trap PR 1 had to fix.  This checker flags, inside modules
matched by ``r001.exact-modules``:

* true division (``/``, ``/=``) -- always produces a float;
* ``float(...)`` conversion;
* float-returning ``math`` functions and float constants (``math.sqrt``,
  ``math.log2``, ``math.pi``, ...) -- the integer-safe ones
  (``math.isqrt``, ``math.gcd``, ``math.comb``, ...) stay legal;
* numpy float dtypes and float-promoting numpy ops (``np.float64``,
  ``np.sqrt``, ``np.mean``, ``np.true_divide``, ...).

The explicitly-guarded vectorized windows from PR 1 (float estimate +
exact integer repair, entered only for addresses ``<= 2**53``) are real,
reviewed exceptions -- they carry ``# reprolint: allow[R001]`` comments
rather than weakening the rule.

v3 adds the cross-module pass: a call in an exact module whose resolved
callee (project summaries) *returns* float-tainted data minted in
another module is flagged at the call site -- float contamination that
transits a utility helper elsewhere no longer hides behind the module
boundary.  Callees living in exact modules with R001 active are exempt
(the contamination is already reported at its source); callees in
R001-waived measurement modules (``repro.core.spread`` & co) are not --
their floats are legal *there*, but importing one into the exact path
is exactly the leak this rule exists to stop.
"""

from __future__ import annotations

import ast

from repro.staticcheck.checkers import Checker, attribute_parts
from repro.staticcheck.config import ReprolintConfig

# The float tables are shared with the dataflow engine's FLOAT taint
# kind, so the syntactic rule and the flow lattice can never disagree
# about what counts as float-producing.
from repro.staticcheck.dataflow import FLOAT, FLOAT_MATH, FLOAT_NUMPY, NUMPY_ROOTS
from repro.staticcheck.loader import SourceModule
from repro.staticcheck.model import Finding

__all__ = ["FloatContaminationChecker"]


class FloatContaminationChecker(Checker):
    code = "R001"
    name = "float-contamination"
    summary = (
        "float-producing operations (/, float(), math.sqrt, numpy float "
        "dtypes/ops) in modules declared exact"
    )

    def check(self, module: SourceModule, config: ReprolintConfig) -> list[Finding]:
        if not config.is_exact(module.name):
            return []
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                findings.append(
                    self.finding(
                        module, node.lineno,
                        "true division `/` produces a float in an exact "
                        "module (use `//` or exact rationals)",
                    )
                )
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Div):
                findings.append(
                    self.finding(
                        module, node.lineno,
                        "`/=` produces a float in an exact module",
                    )
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "float"
            ):
                findings.append(
                    self.finding(
                        module, node.lineno,
                        "float() conversion in an exact module",
                    )
                )
            elif isinstance(node, ast.Attribute):
                parts = attribute_parts(node)
                if parts is None or len(parts) < 2:
                    continue
                root, leaf = parts[0], parts[-1]
                if root == "math" and leaf in FLOAT_MATH:
                    findings.append(
                        self.finding(
                            module, node.lineno,
                            f"math.{leaf} is float-valued; exact modules "
                            "must stay in integer arithmetic "
                            "(math.isqrt/gcd/comb are fine)",
                        )
                    )
                elif root in NUMPY_ROOTS and leaf in FLOAT_NUMPY:
                    findings.append(
                        self.finding(
                            module, node.lineno,
                            f"numpy `{'.'.join(parts)}` is a float dtype or "
                            "float-promoting op in an exact module (the "
                            "int64->float64 promotion trap of PR 1)",
                        )
                    )
        if module.project is not None:
            self._check_cross_module(module, config, findings)
        return findings

    def _check_cross_module(
        self,
        module: SourceModule,
        config: ReprolintConfig,
        findings: list[Finding],
    ) -> None:
        """Flag calls whose resolved cross-module callee returns
        float-tainted data (one finding per line; lines the syntactic
        pass already flagged stay as-is)."""
        seen = {f.line for f in findings}
        dataflow = module.dataflow()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or node.lineno in seen:
                continue
            target = dataflow.call_target(node)
            if target is None or target[0].startswith((":", "self.")):
                continue
            info = module.project.lookup(module.name, target[0])
            if info is None:
                continue
            foreign = sorted(
                (
                    t
                    for t in info.taints
                    if t.kind == FLOAT and t.origin and t.origin != module.name
                ),
                key=lambda t: (t.origin, t.source, t.line),
            )
            for origin in foreign:
                if config.is_exact(origin.origin) and "R001" in config.rules_for(
                    origin.origin
                ):
                    continue  # already reported where it was minted
                leaf = target[0].rsplit(".", 1)[-1]
                seen.add(node.lineno)
                findings.append(
                    self.finding(
                        module, node.lineno,
                        f"{leaf}() returns float-tainted data from "
                        f"{origin.origin} ({origin.source}); the exact path "
                        "must stay in integer arithmetic end to end",
                        trace=(*origin.trace(), f"-> {leaf}() return (line {node.lineno})"),
                    )
                )
                break
