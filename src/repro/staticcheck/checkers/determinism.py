"""R002: no nondeterminism inside modules that must replay exactly.

Crash recovery rebuilds a shard by replaying its op journal against a
checkpoint and asserts the rebuilt state is *bit-identical*; the chaos
suite replays failing fault schedules from a seed.  Both guarantees die
the moment one of these modules consults an unseeded RNG, a wall clock,
or iterates a ``set`` in hash order while producing journal entries,
checkpoints, or events.  Inside modules matched by
``r002.deterministic-modules`` this checker flags:

* module-level ``random.*`` calls (the shared global RNG) and unseeded
  ``random.Random()`` / any ``random.SystemRandom`` -- seeded
  ``random.Random(seed)`` instances are the sanctioned pattern;
* **entropy-derived seeds** (flow-aware, new in v2):
  ``random.Random(x)`` where dataflow shows ``x`` derives from a wall
  clock, OS entropy, a pid, a uuid, or the global RNG -- the PR 4 pass
  treated *any* argument as a legitimate seed, so
  ``Random(time.time())`` and ``seed = time.time_ns(); Random(seed)``
  both slipped through.  The finding carries the taint trace.  v3 makes
  this whole-program: with project summaries attached, a seed laundered
  through any number of helper functions *in other modules*
  (``Random(seed_for(shard))`` where ``seed_for`` bottoms out in
  ``os.getpid`` three files away) carries its entropy across each
  ``return`` boundary, and the finding's trace names the source module
  (``os.getpid (pkg.helpers:4) -> ... -> returned to line 16``);
* wall-clock reads: ``time.time``/``monotonic``/``perf_counter`` (and
  ``_ns`` variants), ``datetime.now``/``utcnow``/``today``;
* entropy sources: ``os.urandom``, ``uuid.uuid1``/``uuid4``,
  ``secrets.*``;
* iteration over a value known to be a ``set`` (a set literal, set
  comprehension, or ``set()``/``frozenset()`` call, directly or through a
  local name) in a ``for`` loop or comprehension -- hash order varies
  across processes (PYTHONHASHSEED), so anything order-sensitive must go
  through ``sorted(...)``.
"""

from __future__ import annotations

import ast

from repro.staticcheck.checkers import Checker, attribute_parts
from repro.staticcheck.config import ReprolintConfig
from repro.staticcheck.dataflow import (
    CLOCK_DATETIME_ATTRS,
    CLOCK_TIME_ATTRS,
    DATETIME_ROOTS,
    ENTROPY,
    UUID_ATTRS,
)
from repro.staticcheck.loader import SourceModule
from repro.staticcheck.model import Finding

__all__ = ["DeterminismChecker"]


class DeterminismChecker(Checker):
    code = "R002"
    name = "determinism"
    summary = (
        "unseeded randomness, wall-clock reads, or unordered set iteration "
        "in modules that must replay deterministically"
    )

    def check(self, module: SourceModule, config: ReprolintConfig) -> list[Finding]:
        if not config.is_deterministic(module.name):
            return []
        findings: list[Finding] = []
        self._check_entropy_sources(module, findings)
        self._check_set_iteration(module, findings)
        return findings

    # -- unseeded RNGs, clocks, entropy --------------------------------

    def _check_entropy_sources(
        self, module: SourceModule, findings: list[Finding]
    ) -> None:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            parts = attribute_parts(node)
            if parts is None or len(parts) < 2:
                continue
            root, leaf = parts[0], parts[-1]
            dotted = ".".join(parts)
            if root == "random":
                if leaf == "SystemRandom":
                    findings.append(
                        self.finding(
                            module, node.lineno,
                            "random.SystemRandom draws OS entropy; replay "
                            "needs a seeded random.Random",
                        )
                    )
                elif leaf == "Random":
                    # Seeded Random(seed) is the sanctioned pattern; a
                    # bare Random() seeds from OS entropy, and a seed
                    # that *derives* from entropy is entropy laundered
                    # through a variable (the PR 4 blind spot).
                    call = self._call_of(module.tree, node)
                    if call is None:
                        continue
                    if not call.args and not call.keywords:
                        findings.append(
                            self.finding(
                                module, node.lineno,
                                "random.Random() without a seed is "
                                "nondeterministic; pass an explicit seed",
                            )
                        )
                    else:
                        self._check_seed_taint(module, call, findings)
                else:
                    findings.append(
                        self.finding(
                            module, node.lineno,
                            f"{dotted} uses the shared global RNG; route "
                            "randomness through a seeded random.Random "
                            "instance",
                        )
                    )
            elif root == "time" and leaf in CLOCK_TIME_ATTRS:
                findings.append(
                    self.finding(
                        module, node.lineno,
                        f"{dotted} reads the wall clock; deterministic "
                        "modules must use the logical tick clock",
                    )
                )
            elif root in DATETIME_ROOTS and leaf in CLOCK_DATETIME_ATTRS:
                findings.append(
                    self.finding(
                        module, node.lineno,
                        f"{dotted} reads the wall clock; deterministic "
                        "modules must use the logical tick clock",
                    )
                )
            elif root == "os" and leaf == "urandom":
                findings.append(
                    self.finding(
                        module, node.lineno,
                        "os.urandom is unseedable entropy",
                    )
                )
            elif root == "uuid" and leaf in UUID_ATTRS:
                findings.append(
                    self.finding(
                        module, node.lineno,
                        f"{dotted} is nondeterministic; derive ids from "
                        "the seeded streams",
                    )
                )
            elif root == "secrets":
                findings.append(
                    self.finding(
                        module, node.lineno,
                        f"{dotted} is unseedable entropy",
                    )
                )

    @staticmethod
    def _call_of(tree: ast.Module, func_node: ast.Attribute) -> ast.Call | None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and node.func is func_node:
                return node
        return None

    def _check_seed_taint(
        self, module: SourceModule, call: ast.Call, findings: list[Finding]
    ) -> None:
        """Flag ``random.Random(seed)`` when dataflow shows the seed
        derives from an entropy source."""
        dataflow = module.dataflow()
        seeds = list(call.args) + [kw.value for kw in call.keywords]
        for seed in seeds:
            tainted = sorted(
                (t for t in dataflow.taints(seed) if t.kind == ENTROPY),
                key=lambda t: (t.line, t.source),
            )
            if tainted:
                origin = tainted[0]
                source = origin.source
                if origin.origin and origin.origin != module.name:
                    source = f"{source} via {origin.origin}"
                findings.append(
                    self.finding(
                        module, call.lineno,
                        f"random.Random seeded from entropy ({source}); "
                        "a replayed run gets a different stream -- derive the "
                        "seed from configuration",
                        trace=origin.trace(),
                    )
                )
                return

    # -- unordered set iteration ---------------------------------------

    def _check_set_iteration(
        self, module: SourceModule, findings: list[Finding]
    ) -> None:
        scopes: list[ast.AST] = [module.tree]
        scopes.extend(
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            set_names = self._set_names(scope)
            for node in self._scope_nodes(scope):
                iters: list[ast.expr] = []
                if isinstance(node, ast.For):
                    iters.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                    iters.extend(gen.iter for gen in node.generators)
                for it in iters:
                    if self._is_set_expr(it) or (
                        isinstance(it, ast.Name) and it.id in set_names
                    ):
                        findings.append(
                            self.finding(
                                module, it.lineno,
                                "iterating a set yields hash order, which "
                                "varies across processes; wrap in sorted() "
                                "before it feeds journals, checkpoints, or "
                                "events",
                            )
                        )
        # Deduplicate: nested scopes re-walk inner nodes.
        unique = {(f.line, f.message): f for f in findings[:]}
        findings[:] = sorted(unique.values(), key=lambda f: f.line)

    @staticmethod
    def _scope_nodes(scope: ast.AST) -> list[ast.AST]:
        """Nodes belonging to *scope* without descending into nested
        function scopes (each nested function is analyzed as its own
        scope, with its own local set-name table)."""
        out: list[ast.AST] = []
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            out.append(node)
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                stack.extend(ast.iter_child_nodes(node))
        return out

    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def _set_names(self, scope: ast.AST) -> set[str]:
        """Local names bound to a set expression anywhere in *scope*
        (and never rebound to something recognizably not-a-set; a name
        rebound to a non-set expression is dropped, keeping the check
        conservative)."""
        names: set[str] = set()
        rebound_non_set: set[str] = set()
        for node in self._scope_nodes(scope):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if self._is_set_expr(node.value):
                            names.add(target.id)
                        else:
                            rebound_non_set.add(target.id)
        return names - rebound_non_set
