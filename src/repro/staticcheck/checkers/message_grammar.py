"""R006: message-grammar conformance.

The cross-process op protocol is a three-way agreement: the router
*emits* tagged ops (``["tick", ...]`` list literals handed to a journal
or shard-client call), the worker *handles* them live (``kind ==
"tick"`` dispatch branches), and recovery *replays* them from the
journal.  Drift between the three -- a tag emitted with no handler, a
live-handled tag the journal cannot replay, a replay branch for a tag
nothing emits -- is exactly the class of bug behind the torn-round and
bulk-replay incidents, and no single-file rule can see it.

The rule is configured, not inferred: each ``[[tool.reprolint.r006
.grammar]]`` table names the emit / handle / replay functions (fully
qualified) and the tags sanctioned to be live-only (``pure-tags``:
read-only ops with no journal footprint).  Harvesting is per file --
:func:`harvest_grammar` extracts ``(grammar, role, tag, line)`` facts
from the modules that own a configured function, and the rows ride in
the analysis cache -- while conformance (:func:`grammar_conformance`)
is a whole-project set comparison the runner performs once per run over
the cached facts, so a warm run pays set ops, not re-parses.

Three checks per grammar:

* ``E - (H | R)`` -- emitted but neither handled nor replayed (bulk
  tags like ``requests`` are journal-only, so replay alone satisfies
  an emit);
* ``(H - R) - pure`` -- handled live but unreplayable: state mutated on
  the live path silently vanishes on recovery unless the tag is
  declared pure;
* ``R - E`` -- a replay branch nothing emits: dead grammar, usually a
  renamed tag whose emit site moved on.

Findings carry a cross-file trace naming the emit, live-dispatch, and
replay sites involved.  They anchor to real lines but are *project*
findings (the evidence spans files), so they are not ``allow[...]``
suppressible -- fix the grammar or the config.
"""

from __future__ import annotations

import ast
from typing import Iterable, Mapping

from repro.staticcheck.checkers import Checker
from repro.staticcheck.config import GrammarSpec, ReprolintConfig
from repro.staticcheck.loader import SourceModule
from repro.staticcheck.model import Finding

__all__ = ["MessageGrammarChecker", "harvest_grammar", "grammar_conformance"]

#: One harvested fact: ``(grammar, role, tag, line)``.  Roles are
#: ``emit`` / ``handle`` / ``replay`` for tag sites and ``*_decl``
#: (empty tag) anchoring the configured function's definition, so a
#: *missing* branch still has a site the trace can point at.
GrammarFact = tuple[str, str, str, int]


class MessageGrammarChecker(Checker):
    """R006 -- the registry entry.  Per-module :meth:`check` is empty on
    purpose: facts are harvested by the runner (so they can ride in the
    cache) and judged project-wide by :func:`grammar_conformance`."""

    code = "R006"
    name = "message-grammar"
    summary = "op tags must agree across emit, live-dispatch, and replay sites"

    def check(self, module: SourceModule, config: ReprolintConfig) -> list[Finding]:
        return []


# ----------------------------------------------------------------------
# Per-file harvest
# ----------------------------------------------------------------------


def _owned_rest(module_name: str, ref: str) -> tuple[str, ...] | None:
    """The in-module path of *ref* when this module owns it: ``("f",)``
    or ``("Cls", "m")``.  A deeper rest means the ref belongs to a
    submodule, not to us."""
    prefix = module_name + "."
    if not ref.startswith(prefix):
        return None
    parts = tuple(ref[len(prefix):].split("."))
    return parts if 0 < len(parts) <= 2 else None


def _locate(tree: ast.Module, parts: tuple[str, ...]) -> ast.AST | None:
    """The FunctionDef at in-module path *parts* (classes for every part
    but the last), or ``None``."""
    body: Iterable[ast.stmt] = tree.body
    for part in parts[:-1]:
        found = None
        for stmt in body:
            if isinstance(stmt, ast.ClassDef) and stmt.name == part:
                found = stmt
                break
        if found is None:
            return None
        body = found.body
    for stmt in body:
        if (
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name == parts[-1]
        ):
            return stmt
    return None


def _call_leaf(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _emit_facts(
    tree: ast.Module, grammar: GrammarSpec, leaves: frozenset[str]
) -> list[GrammarFact]:
    """Tags at call sites of the grammar's emitters: any ``ast.List``
    argument whose first element is a string literal is a tagged op."""
    facts: list[GrammarFact] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or _call_leaf(node) not in leaves:
            continue
        for arg in node.args:
            if (
                isinstance(arg, ast.List)
                and arg.elts
                and isinstance(arg.elts[0], ast.Constant)
                and isinstance(arg.elts[0].value, str)
            ):
                facts.append((grammar.name, "emit", arg.elts[0].value, node.lineno))
    return facts


def _dispatch_facts(
    func: ast.AST, grammar: GrammarSpec, role: str
) -> list[GrammarFact]:
    """Tags a dispatcher branches on: every ``name == "tag"`` (either
    orientation) inside the configured function body."""
    facts: list[GrammarFact] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Compare) or len(node.ops) != 1:
            continue
        if not isinstance(node.ops[0], ast.Eq):
            continue
        for side in (node.left, node.comparators[0]):
            if isinstance(side, ast.Constant) and isinstance(side.value, str):
                facts.append((grammar.name, role, side.value, node.lineno))
    return facts


def harvest_grammar(
    module: SourceModule, config: ReprolintConfig
) -> tuple[GrammarFact, ...]:
    """All R006 facts this module contributes, deterministic order."""
    facts: list[GrammarFact] = []
    for grammar in config.grammars:
        emit_leaves = set()
        for ref in grammar.emit:
            rest = _owned_rest(module.name, ref)
            if rest is None:
                continue
            emit_leaves.add(rest[-1])
            declared = _locate(module.tree, rest)
            if declared is not None:
                facts.append((grammar.name, "emit_decl", "", declared.lineno))
        if emit_leaves:
            facts.extend(_emit_facts(module.tree, grammar, frozenset(emit_leaves)))
        for refs, role in ((grammar.handle, "handle"), (grammar.replay, "replay")):
            for ref in refs:
                rest = _owned_rest(module.name, ref)
                if rest is None:
                    continue
                declared = _locate(module.tree, rest)
                if declared is None:
                    continue
                facts.append((grammar.name, f"{role}_decl", "", declared.lineno))
                facts.extend(_dispatch_facts(declared, grammar, role))
    return tuple(sorted(set(facts)))


# ----------------------------------------------------------------------
# Whole-project conformance
# ----------------------------------------------------------------------

_ROLE_LABEL = {"emit": "emitted", "handle": "handled", "replay": "replayed"}


def grammar_conformance(
    config: ReprolintConfig,
    facts: Mapping[str, tuple[str, tuple[GrammarFact, ...]]],
) -> list[Finding]:
    """Judge every configured grammar over the harvested facts
    (``path -> (module, rows)``) and return the drift findings."""
    findings: list[Finding] = []
    for grammar in config.grammars:
        sites: dict[str, dict[str, list[tuple[str, str, int]]]] = {
            "emit": {}, "handle": {}, "replay": {},
        }
        decls: dict[str, list[tuple[str, str, int]]] = {
            "emit": [], "handle": [], "replay": [],
        }
        for path in sorted(facts):
            module_name, rows = facts[path]
            for name, role, tag, line in rows:
                if name != grammar.name:
                    continue
                if role.endswith("_decl"):
                    decls[role[:-5]].append((path, module_name, line))
                else:
                    sites[role].setdefault(tag, []).append(
                        (path, module_name, line)
                    )
        emitted = set(sites["emit"])
        handled = set(sites["handle"])
        replayed = set(sites["replay"])
        pure = set(grammar.pure)

        def trace_for(tag: str) -> tuple[str, ...]:
            lines: list[str] = []
            for role in ("emit", "handle", "replay"):
                at = sites[role].get(tag)
                if at:
                    lines.extend(
                        f"{_ROLE_LABEL[role]} at {p}:{ln}" for p, _m, ln in at
                    )
                else:
                    lines.extend(
                        f"no {role} branch in dispatcher at {p}:{ln}"
                        for p, _m, ln in decls[role]
                    )
            return tuple(lines)

        def report(tag: str, anchor_role: str, message: str) -> None:
            anchor = sites[anchor_role][tag][0]
            path, module_name, line = anchor
            findings.append(
                Finding(
                    rule="R006",
                    path=path,
                    line=line,
                    message=f"grammar '{grammar.name}': {message}",
                    module=module_name,
                    trace=trace_for(tag),
                )
            )

        for tag in sorted(emitted - (handled | replayed)):
            report(
                tag,
                "emit",
                f"op tag '{tag}' is emitted but neither handled nor replayed",
            )
        for tag in sorted((handled - replayed) - pure):
            report(
                tag,
                "handle",
                f"op tag '{tag}' is handled live but has no replay branch"
                " (state applied live would vanish on recovery;"
                " declare it in pure-tags if it is read-only)",
            )
        for tag in sorted(replayed - emitted):
            report(
                tag,
                "replay",
                f"op tag '{tag}' has a replay branch but is never emitted",
            )
    return findings
