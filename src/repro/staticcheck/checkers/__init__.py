"""The checker registry.

A checker is a class with a ``code`` (the rule it reports), a one-line
``summary`` (the rules table in ``--list-rules`` and the README), and a
``check(module, config)`` method returning findings.  The runner decides
which checkers run per module (per-module disables, the ``--rules``
filter); checkers themselves only decide whether a *module is in scope*
for their rule (e.g. R001 only looks at modules declared exact).
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.staticcheck.config import ReprolintConfig
from repro.staticcheck.loader import SourceModule
from repro.staticcheck.model import Finding

__all__ = ["Checker", "ALL_CHECKERS", "checker_for", "attribute_parts"]


class Checker:
    """Base class: subclasses set ``code``/``name``/``summary`` and
    implement :meth:`check`; checkers with whole-project concerns (the
    config itself, not any one module) also override
    :meth:`check_project`, which the runner calls exactly once per run."""

    code: str = ""
    name: str = ""
    summary: str = ""

    def check(self, module: SourceModule, config: ReprolintConfig) -> list[Finding]:
        raise NotImplementedError

    def check_project(
        self, config: ReprolintConfig, config_path: Path | None
    ) -> list[Finding]:
        """Findings about the configuration/project as a whole (e.g. a
        cycle among the R004 import allowances).  Not suppressible:
        there is no source line to anchor an ``allow[...]`` to."""
        return []

    def finding(
        self,
        module: SourceModule,
        line: int,
        message: str,
        trace: tuple[str, ...] = (),
    ) -> Finding:
        return Finding(
            rule=self.code,
            path=_display_path(module.path),
            line=line,
            message=message,
            module=module.name,
            trace=trace,
        )


def _display_path(path: Path) -> str:
    """Repo-relative when possible (stable across machines), absolute
    otherwise."""
    try:
        return str(path.relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def attribute_parts(node: ast.Attribute) -> tuple[str, ...] | None:
    """``a.b.c`` as ``("a", "b", "c")`` when the chain roots in a plain
    name, else ``None`` (calls, subscripts, literals)."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return tuple(reversed(parts))
    return None


def _registry() -> list[Checker]:
    from repro.staticcheck.checkers.determinism import DeterminismChecker
    from repro.staticcheck.checkers.event_discipline import EventDisciplineChecker
    from repro.staticcheck.checkers.float_contamination import (
        FloatContaminationChecker,
    )
    from repro.staticcheck.checkers.layering import LayeringChecker
    from repro.staticcheck.checkers.message_grammar import MessageGrammarChecker
    from repro.staticcheck.checkers.snapshot_completeness import (
        SnapshotCompletenessChecker,
    )

    return [
        FloatContaminationChecker(),
        DeterminismChecker(),
        SnapshotCompletenessChecker(),
        LayeringChecker(),
        EventDisciplineChecker(),
        MessageGrammarChecker(),
    ]


ALL_CHECKERS: list[Checker] = _registry()


def checker_for(code: str) -> Checker:
    for checker in ALL_CHECKERS:
        if checker.code == code.upper():
            return checker
    raise KeyError(code)
