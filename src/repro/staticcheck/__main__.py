"""``python -m repro.staticcheck [paths...]`` -- the lint gate's
entry point (also reachable as ``repro-pf lint``)."""

import sys

from repro.staticcheck.runner import run_cli

if __name__ == "__main__":
    sys.exit(run_cli())
