"""Function summaries and the cross-module taint fixpoint.

This is the whole-program half of the v3 engine.  Per module, a
seed-collection :class:`~repro.staticcheck.dataflow.ModuleDataflow` run
reduces every function to a :class:`FunctionSeed` -- the facts that
survive a module boundary:

* **Concrete return taints** -- entropy / float sources that reach a
  ``return``, already filtered through the module's own ``allow[...]``
  suppressions (a waived source must not cascade into every caller) and
  stamped with the defining module as their ``origin``.
* **Return calls** -- unresolved cross-module calls whose result
  reaches a ``return`` (``CALL`` placeholders).  The fixpoint replaces
  each with the callee's taints, so a seed laundered through any number
  of helpers in any number of files still surfaces at the sink.
* **Mutation facts** -- which parameters' objects the body mutates, and
  which parameters it forwards to which callee positions, so
  ``def _purge(t): t.clear()`` makes ``_purge(self._profiles)`` a state
  mutation wherever it is called from.

:class:`ProjectSummaries` closes these over the call graph (bounded
rounds; taint sets are hop-capped and size-capped so the iteration
converges) and answers the two queries check-mode dataflow asks:
``lookup(module, ref) -> FunctionInfo`` and ``mutated_params(module,
ref)``.  Seeds serialize into the analysis cache, so a warm run
rebuilds the project oracle without re-parsing unchanged files.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from repro.staticcheck.callgraph import MODULE_KEY, RefResolver
from repro.staticcheck.dataflow import (
    CALL,
    ENTROPY,
    FLOAT,
    ModuleDataflow,
    Taint,
    dotted_parts,
)
from repro.staticcheck.loader import SourceModule, load_module

__all__ = [
    "FunctionSeed",
    "FunctionInfo",
    "ProjectSummaries",
    "extract_seeds",
    "extract_file_seeds",
    "body_hash",
    "class_attr_aliases",
    "MODULE_KEY",
]

#: Which rule's suppressions filter which taint kind out of a summary.
_KIND_RULE = {ENTROPY: "R002", FLOAT: "R001"}

#: Caps keeping the fixpoint small and convergent.
_MAX_SEED_TAINTS = 16
_MAX_INFO_TAINTS = 24
_MAX_ROUNDS = 20


def body_hash(node: ast.AST) -> str:
    """Structure-only function fingerprint: comments, whitespace, and
    line-number shifts (code moving above the function) don't count as
    a change, so they invalidate nothing downstream."""
    return hashlib.sha256(ast.dump(node).encode()).hexdigest()[:16]


def _taint_key(taint: Taint) -> tuple:
    return (taint.kind, taint.origin, taint.source, taint.line, len(taint.hops), taint.hops)


@dataclass(frozen=True, slots=True)
class FunctionSeed:
    """One function's module-boundary facts, cache-serializable."""

    hash: str = ""
    taints: tuple[Taint, ...] = ()
    return_calls: tuple[str, ...] = ()
    calls: tuple[str, ...] = ()
    mutated_params: tuple[int, ...] = ()
    param_passes: tuple[tuple[int, str, int], ...] = ()

    def to_dict(self) -> dict:
        return {
            "hash": self.hash,
            "taints": [
                [t.kind, t.source, t.line, t.origin, list(t.hops)] for t in self.taints
            ],
            "return_calls": list(self.return_calls),
            "calls": list(self.calls),
            "mutated_params": list(self.mutated_params),
            "param_passes": [list(p) for p in self.param_passes],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FunctionSeed":
        return cls(
            hash=str(payload.get("hash", "")),
            taints=tuple(
                Taint(kind, source, int(line), tuple(hops), origin)
                for kind, source, line, origin, hops in payload.get("taints", ())
            ),
            return_calls=tuple(payload.get("return_calls", ())),
            calls=tuple(payload.get("calls", ())),
            mutated_params=tuple(int(i) for i in payload.get("mutated_params", ())),
            param_passes=tuple(
                (int(i), ref, int(j)) for i, ref, j in payload.get("param_passes", ())
            ),
        )


@dataclass(frozen=True, slots=True)
class FunctionInfo:
    """Fixpoint-resolved facts check-mode dataflow substitutes at a
    call site: taints the call's result carries, parameter indices the
    call mutates."""

    taints: tuple[Taint, ...] = ()
    mutates: frozenset[int] = frozenset()


def extract_seeds(module: SourceModule) -> dict[str, FunctionSeed]:
    """All function seeds of one parsed module, keyed by fq name
    ("f" / "Cls.m"), plus a refs-only ``MODULE_KEY`` pseudo-entry for
    the top-level statements."""
    dataflow = ModuleDataflow(
        module.tree, module_name=module.name, collect_calls=True
    )
    seeds: dict[str, FunctionSeed] = {}
    for owner, func in dataflow.function_nodes:
        flow = dataflow.flow(func)
        if flow is None:
            continue
        fq = f"{owner}.{func.name}" if owner else func.name
        concrete = []
        for taint in flow.return_taints:
            rule = _KIND_RULE.get(taint.kind)
            if rule is None:
                continue
            if module.suppression_for(rule, taint.line) is not None:
                continue
            concrete.append(
                Taint(taint.kind, taint.source, taint.line, taint.hops, module.name)
            )
        seeds[fq] = FunctionSeed(
            hash=body_hash(func),
            taints=tuple(sorted(set(concrete), key=_taint_key)[:_MAX_SEED_TAINTS]),
            return_calls=tuple(
                sorted({t.source for t in flow.return_taints if t.kind == CALL})
            ),
            calls=tuple(sorted(flow.call_refs)),
            mutated_params=tuple(sorted(flow.mutated_params)),
            param_passes=tuple(sorted(flow.param_passes)),
        )
    seeds[MODULE_KEY] = FunctionSeed(
        calls=tuple(sorted(dataflow.module_flow.call_refs))
    )
    return seeds


def extract_file_seeds(path: Path | str) -> dict[str, FunctionSeed]:
    """Seeds for one file; empty when the file doesn't parse (an E999
    file contributes nothing to the project and, by vanishing from the
    call graph, dirties everything that called into it)."""
    try:
        return extract_seeds(load_module(Path(path)))
    except (SyntaxError, OSError, UnicodeDecodeError, ValueError):
        return {}


class ProjectSummaries:
    """The cross-module oracle: seeds closed over the call graph.

    Picklable (pool workers carry it), and intentionally small -- after
    the fixpoint only the resolved table and the resolver survive.
    """

    def __init__(self, seeds: Mapping[str, Mapping[str, FunctionSeed]]) -> None:
        self._resolver = RefResolver(
            {module: fns.keys() for module, fns in seeds.items()}
        )
        self._table: dict[tuple[str, str], FunctionInfo] = {}
        self._solve(seeds)

    def _solve(self, seeds: Mapping[str, Mapping[str, FunctionSeed]]) -> None:
        taints: dict[tuple[str, str], frozenset[Taint]] = {}
        mutates: dict[tuple[str, str], frozenset[int]] = {}
        flat: list[tuple[str, str, FunctionSeed]] = []
        for module in sorted(seeds):
            for fq in sorted(seeds[module]):
                seed = seeds[module][fq]
                key = (module, fq)
                taints[key] = frozenset(seed.taints)
                mutates[key] = frozenset(seed.mutated_params)
                flat.append((module, fq, seed))
        for _round in range(_MAX_ROUNDS):
            changed = False
            for module, fq, seed in flat:
                key = (module, fq)
                new_taints = set(taints[key])
                for ref in seed.return_calls:
                    target = self._resolver.resolve(module, ref)
                    if target is None:
                        continue
                    leaf = ref.rsplit(".", 1)[-1]
                    for taint in taints.get(target, ()):
                        new_taints.add(taint.hop(f"-> {leaf}() return"))
                new_mutates = set(mutates[key])
                for index, ref, pos in seed.param_passes:
                    target = self._resolver.resolve(module, ref)
                    if target is not None and pos in mutates.get(target, ()):
                        new_mutates.add(index)
                capped = frozenset(
                    sorted(new_taints, key=_taint_key)[:_MAX_INFO_TAINTS]
                )
                if capped != taints[key]:
                    taints[key] = capped
                    changed = True
                if new_mutates != mutates[key]:
                    mutates[key] = frozenset(new_mutates)
                    changed = True
            if not changed:
                break
        for key in taints:
            if taints[key] or mutates[key]:
                self._table[key] = FunctionInfo(
                    taints=tuple(sorted(taints[key], key=_taint_key)),
                    mutates=mutates[key],
                )

    # -- queries (the ModuleDataflow `project` protocol) ---------------

    def info(self, key: tuple[str, str]) -> FunctionInfo | None:
        """The fixpoint entry for a ``(module, fq)`` key, ``None`` when
        the function has no facts.  ``FunctionInfo`` is a frozen
        dataclass over sorted tuples, so two fixpoints' entries compare
        by value -- the summary-delta planner's whole trick."""
        return self._table.get(key)

    def lookup(self, module: str, ref: str) -> FunctionInfo | None:
        target = self._resolver.resolve(module, ref)
        if target is None:
            return None
        return self._table.get(target)

    def mutated_params(self, module: str, ref: str) -> frozenset[int]:
        info = self.lookup(module, ref)
        return info.mutates if info is not None else frozenset()


def class_attr_aliases(class_node: ast.ClassDef) -> dict[str, str]:
    """The self-attr alias map of one class: ``{alias: root}`` for every
    ``self.X = self.Y`` assignment in any method, with chains resolved
    to their root attribute (cycle-safe).  ``self._t = self._profiles``
    yields ``{"_t": "_profiles"}``."""
    direct: dict[str, str] = {}
    for item in ast.walk(class_node):
        if not isinstance(item, ast.Assign) or len(item.targets) != 1:
            continue
        target_parts = (
            dotted_parts(item.targets[0])
            if isinstance(item.targets[0], ast.Attribute)
            else None
        )
        value_parts = (
            dotted_parts(item.value) if isinstance(item.value, ast.Attribute) else None
        )
        if (
            target_parts is not None
            and value_parts is not None
            and len(target_parts) == 2
            and len(value_parts) == 2
            and target_parts[0] == "self"
            and value_parts[0] == "self"
        ):
            direct.setdefault(target_parts[1], value_parts[1])
    roots: dict[str, str] = {}
    for attr in direct:
        seen = {attr}
        current = direct[attr]
        while current in direct and current not in seen:
            seen.add(current)
            current = direct[current]
        if current != attr:
            roots[attr] = current
    return roots
