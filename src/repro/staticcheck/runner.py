"""The analysis driver: load files, run checkers, match suppressions,
report, exit.

Exit-code contract (what CI keys off):

* ``0`` -- zero unsuppressed findings;
* ``1`` -- at least one finding (including ``R000`` stale suppressions
  and unparsable files);
* ``2`` -- usage or configuration error.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence, TextIO

from repro.staticcheck.checkers import ALL_CHECKERS
from repro.staticcheck.config import ConfigError, ReprolintConfig, load_config
from repro.staticcheck.loader import iter_python_files, load_module
from repro.staticcheck.model import USELESS_SUPPRESSION, Finding
from repro.staticcheck.reporters import render_json, render_text

__all__ = ["AnalysisResult", "analyze_paths", "run_cli", "main"]

#: Rule reported for files the parser rejects (not suppressible: a file
#: the analyzer cannot read is a file none of the invariants cover).
PARSE_ERROR = "E999"


@dataclass(slots=True)
class AnalysisResult:
    """Everything one analysis run produced."""

    findings: list[Finding] = field(default_factory=list)
    #: Findings waived by an allow comment; ``suppressed_by`` keyed by
    #: ``(path, suppression_line)`` -- the gate test uses this to prove
    #: every suppression in the tree is load-bearing.
    suppressed: list[tuple[Finding, int]] = field(default_factory=list)
    files: int = 0
    elapsed_s: float = 0.0
    config_path: Path | None = None

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule] = out.get(finding.rule, 0) + 1
        return dict(sorted(out.items()))

    def suppressed_counts_by_rule(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for finding, _line in self.suppressed:
            out[finding.rule] = out.get(finding.rule, 0) + 1
        return dict(sorted(out.items()))


def analyze_paths(
    paths: Sequence[Path | str],
    config: ReprolintConfig | None = None,
    rules: Sequence[str] | None = None,
) -> AnalysisResult:
    """Run the checkers over every ``.py`` file under *paths*.

    *config* defaults to the ``[tool.reprolint]`` table of the nearest
    ``pyproject.toml`` above the first path.  *rules* optionally narrows
    the run to a subset of codes (``R000`` stale-suppression reporting
    then only considers those codes, so a narrowed run never flags a
    suppression whose rule simply did not execute).
    """
    started = time.perf_counter()
    path_objs = [Path(p) for p in paths]
    result = AnalysisResult()
    if config is None:
        if not path_objs:
            raise ValueError("no paths to analyze")
        config, result.config_path = load_config(path_objs[0])
    requested = (
        frozenset(code.upper() for code in rules) if rules is not None else None
    )

    for file_path in iter_python_files(path_objs):
        result.files += 1
        try:
            module = load_module(file_path)
        except SyntaxError as exc:
            result.findings.append(
                Finding(
                    rule=PARSE_ERROR,
                    path=str(file_path),
                    line=exc.lineno or 1,
                    message=f"cannot parse: {exc.msg}",
                )
            )
            continue
        active = config.rules_for(module.name)
        if requested is not None:
            active &= requested
        raw: list[Finding] = []
        for checker in ALL_CHECKERS:
            if checker.code in active:
                raw.extend(checker.check(module, config))
        for finding in raw:
            suppression = module.suppression_for(finding.rule, finding.line)
            if suppression is None:
                result.findings.append(finding)
            else:
                suppression.matched.add(finding.rule)
                result.suppressed.append((finding, suppression.line))
        # A suppression whose rules all ran and matched nothing is stale.
        for suppression in module.suppressions:
            if suppression.used:
                continue
            if not suppression.rules <= active:
                continue  # some listed rule didn't run; can't judge it
            result.findings.append(
                Finding(
                    rule=USELESS_SUPPRESSION,
                    path=finding_path(module.path),
                    line=suppression.line,
                    message=(
                        f"allow[{','.join(sorted(suppression.rules))}] "
                        "matched no finding; delete the stale suppression"
                    ),
                    module=module.name,
                )
            )

    result.findings.sort(key=Finding.sort_key)
    result.elapsed_s = time.perf_counter() - started
    return result


def finding_path(path: Path) -> str:
    try:
        return str(path.relative_to(Path.cwd()))
    except ValueError:
        return str(path)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description="reprolint: AST-based invariant analysis (R001-R005)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable JSON report"
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rules table and exit"
    )
    return parser


def run_cli(argv: Sequence[str] | None = None, stream: TextIO | None = None) -> int:
    out = stream if stream is not None else sys.stdout
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    if args.list_rules:
        for checker in ALL_CHECKERS:
            print(f"{checker.code}  {checker.name}: {checker.summary}", file=out)
        return 0
    rules = None
    if args.rules:
        rules = [token.strip() for token in args.rules.split(",") if token.strip()]
    try:
        result = analyze_paths(args.paths, rules=rules)
    except (ConfigError, ValueError, OSError) as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(render_json(result), file=out)
    else:
        print(render_text(result), file=out)
    return 0 if result.ok else 1


def main(argv: Sequence[str] | None = None) -> int:  # pragma: no cover
    return run_cli(argv)
