"""The analysis driver: load files, run checkers, match suppressions,
report, exit.

v2 structure: all per-file work lives in :func:`analyze_file`, a pure
picklable worker, so the same code path serves three execution modes --

* **serial** (the default on one core, and for small dirty sets);
* **multiprocessing** (``--jobs N``): cold full-tree runs fan the worker
  out over a process pool (workers inherit the project summaries via a
  pool initializer, so the oracle is shipped once per worker);
* **cached** (``--cache``/``--no-cache``): reuse each file's stored
  outcome unless its content hash changed or it owns a function in the
  dirty call-graph closure (see :mod:`repro.staticcheck.cache`).

v3 adds a project phase before the per-file phase: function seeds for
every file (cached ones come from their cache entries, changed ones
from the planner's re-extraction, and with the cache off everything is
seeded in-process) are closed into a
:class:`~repro.staticcheck.summaries.ProjectSummaries` oracle that each
per-file analysis consults for cross-module taint and mutation facts.
A fully-warm run analyzes nothing and therefore never builds the
oracle -- the ~10 ms warm path is untouched.

v4 reuses the fixpoint the cache planner already solved for its
summary delta (the oracle is never computed twice per run), and runs
the R006 message-grammar conformance pass once per run in the parent:
per-file grammar facts ride in the cache records, conformance is a set
comparison over them, so even a fully-warm run judges the grammar
without touching an AST.

Project-level checks (``Checker.check_project``, e.g. R004's allowance
cycles) run exactly once per analysis in the parent process; they
depend only on the config, so they are never cached and never
suppressible.

Exit-code contract (what CI keys off):

* ``0`` -- zero unsuppressed findings;
* ``1`` -- at least one finding (including ``R000`` stale suppressions
  and unparsable files);
* ``2`` -- usage or configuration error.
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence, TextIO

from repro.staticcheck.cache import (
    CACHE_FILENAME,
    AnalysisCache,
    CachedFile,
    CacheStats,
    config_hash,
    content_hash,
)
from repro.staticcheck.checkers import ALL_CHECKERS
from repro.staticcheck.checkers.message_grammar import (
    grammar_conformance,
    harvest_grammar,
)
from repro.staticcheck.config import ConfigError, ReprolintConfig, load_config
from repro.staticcheck.loader import (
    iter_python_files,
    load_module,
    module_imports,
    module_name_for,
)
from repro.staticcheck.model import ANALYZER_VERSION, USELESS_SUPPRESSION, Finding
from repro.staticcheck.reporters import render_json, render_text
from repro.staticcheck.summaries import (
    FunctionSeed,
    ProjectSummaries,
    extract_file_seeds,
)

__all__ = ["AnalysisResult", "analyze_paths", "analyze_file", "run_cli", "main"]

#: Rule reported for files the parser rejects (not suppressible: a file
#: the analyzer cannot read is a file none of the invariants cover).
PARSE_ERROR = "E999"

#: Below this many files to analyze, a process pool costs more than it
#: saves; stay serial regardless of ``jobs``.
_POOL_THRESHOLD = 2


@dataclass(slots=True)
class AnalysisResult:
    """Everything one analysis run produced."""

    findings: list[Finding] = field(default_factory=list)
    #: Findings waived by an allow comment; ``suppressed_by`` keyed by
    #: ``(path, suppression_line)`` -- the gate test uses this to prove
    #: every suppression in the tree is load-bearing.
    suppressed: list[tuple[Finding, int]] = field(default_factory=list)
    files: int = 0
    elapsed_s: float = 0.0
    config_path: Path | None = None
    #: Analyzer identity, for reports and regression tracking.
    analyzer_version: str = ANALYZER_VERSION
    #: The composite cache key this run's results are valid under.
    config_hash: str = ""
    #: Hit/miss accounting when the cache was enabled, else ``None``.
    cache_stats: CacheStats | None = None

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule] = out.get(finding.rule, 0) + 1
        return dict(sorted(out.items()))

    def suppressed_counts_by_rule(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for finding, _line in self.suppressed:
            out[finding.rule] = out.get(finding.rule, 0) + 1
        return dict(sorted(out.items()))


def analyze_file(
    path_str: str,
    config: ReprolintConfig,
    requested: frozenset[str] | None,
    digest: str = "",
    project: ProjectSummaries | None = None,
    seeds: dict[str, FunctionSeed] | None = None,
) -> tuple[str, CachedFile]:
    """Analyze one file, completely: load, run every active checker,
    match suppressions, report stale suppressions.  Pure function of
    (file content, config, requested rules, project summaries) -- the
    property both the cache and the process pool rely on.  *seeds* are
    the file's already-extracted function seeds, stored into the cache
    record so warm planning never re-parses the file."""
    file_path = Path(path_str)
    try:
        module = load_module(file_path)
    except SyntaxError as exc:
        # Never memoized as clean: the record keeps the E999 finding
        # (replayed on warm hits) and carries no function seeds, so the
        # broken file contributes nothing to the project oracle.
        record = CachedFile(hash=digest, module=module_name_for(file_path))
        record.findings.append(
            Finding(
                rule=PARSE_ERROR,
                path=path_str,
                line=exc.lineno or 1,
                message=f"cannot parse: {exc.msg}",
            )
        )
        return path_str, record
    module.project = project
    active = config.rules_for(module.name)
    if requested is not None:
        active &= requested
    raw: list[Finding] = []
    for checker in ALL_CHECKERS:
        if checker.code in active:
            raw.extend(checker.check(module, config))
    record = CachedFile(
        hash=digest,
        module=module.name,
        imports=tuple(sorted({t for t, _ in module_imports(module.tree, module.name)})),
        functions=dict(seeds) if seeds else {},
        grammar=(
            harvest_grammar(module, config)
            if "R006" in active and config.grammars
            else ()
        ),
    )
    for finding in raw:
        suppression = module.suppression_for(finding.rule, finding.line)
        if suppression is None:
            record.findings.append(finding)
        else:
            suppression.matched.add(finding.rule)
            record.suppressed.append((finding, suppression.line))
    # A suppression whose rules all ran and matched nothing is stale.
    for suppression in module.suppressions:
        if suppression.used:
            continue
        if not suppression.rules <= active:
            continue  # some listed rule didn't run; can't judge it
        record.findings.append(
            Finding(
                rule=USELESS_SUPPRESSION,
                path=finding_path(module.path),
                line=suppression.line,
                message=(
                    f"allow[{','.join(sorted(suppression.rules))}] "
                    "matched no finding; delete the stale suppression"
                ),
                module=module.name,
            )
        )
    return path_str, record


#: Per-worker project oracle, installed once by the pool initializer so
#: it is pickled per *worker*, not per task.
_WORKER_PROJECT: ProjectSummaries | None = None


def _pool_init(project: ProjectSummaries | None) -> None:
    global _WORKER_PROJECT
    _WORKER_PROJECT = project


def _pool_worker(
    args: tuple[str, ReprolintConfig, frozenset[str] | None, str, dict[str, FunctionSeed]],
) -> tuple[str, CachedFile]:
    path_str, config, requested, digest, seeds = args
    return analyze_file(
        path_str, config, requested, digest, project=_WORKER_PROJECT, seeds=seeds
    )


def _effective_jobs(jobs: int | None) -> int:
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    return max(1, jobs)


def analyze_paths(
    paths: Sequence[Path | str],
    config: ReprolintConfig | None = None,
    rules: Sequence[str] | None = None,
    *,
    cache: bool = False,
    cache_path: Path | None = None,
    jobs: int | None = None,
    report_only: Iterable[Path | str] | None = None,
) -> AnalysisResult:
    """Run the checkers over every ``.py`` file under *paths*.

    *config* defaults to the ``[tool.reprolint]`` table of the nearest
    ``pyproject.toml`` above the first path.  *rules* optionally narrows
    the run to a subset of codes (``R000`` stale-suppression reporting
    then only considers those codes, so a narrowed run never flags a
    suppression whose rule simply did not execute).

    *cache* enables the incremental cache (library default off; the CLI
    defaults it on).  *cache_path* overrides its location, which is
    otherwise ``.reprolint-cache.json`` next to the governing
    ``pyproject.toml``.  *jobs* sets the process-pool width for the
    files that actually need analysis (``None``/``0`` = one per CPU,
    ``1`` = serial).

    *report_only* keeps the *analysis* project-wide (so cross-module
    facts and the cache stay correct) but filters the reported findings
    to the given files -- the ``--changed`` fast path.  Project-level
    findings (anchored to the config file) always survive the filter.
    """
    started = time.perf_counter()
    path_objs = [Path(p) for p in paths]
    result = AnalysisResult()
    if config is None:
        if not path_objs:
            raise ValueError("no paths to analyze")
        config, result.config_path = load_config(path_objs[0])
    requested = (
        frozenset(code.upper() for code in rules) if rules is not None else None
    )
    result.config_hash = config_hash(config, requested)

    files = [str(p) for p in iter_python_files(path_objs)]
    result.files = len(files)

    store: AnalysisCache | None = None
    targets: list[tuple[str, str]]  # (path, content hash) needing analysis
    fresh_seeds: dict[str, dict[str, FunctionSeed]] = {}
    planned_project: ProjectSummaries | None = None
    if cache:
        if cache_path is None:
            anchor = (
                result.config_path.parent
                if result.config_path is not None
                else Path.cwd()
            )
            cache_path = anchor / CACHE_FILENAME
        store = AnalysisCache.load(cache_path, result.config_hash)
        hashes = {path: content_hash(Path(path)) for path in files}
        plan = store.plan(hashes, extract=extract_file_seeds)
        changed, invalidated = plan.changed, plan.invalidated
        fresh_seeds = plan.fresh_seeds
        result.cache_stats = CacheStats(
            hits=len(files) - len(changed) - len(invalidated),
            misses=len(changed) + len(invalidated),
            invalidated=len(invalidated),
            changed_functions=plan.changed_functions,
            invalidated_functions=plan.invalidated_functions,
            skipped_by_summary=plan.skipped_by_summary,
            closure_files=plan.closure_files,
        )
        planned_project = plan.project
        targets = [(path, hashes[path]) for path in files if path in changed or path in invalidated]
    else:
        targets = [(path, "") for path in files]

    # Project phase: close every file's function seeds into the
    # cross-module oracle.  Skipped on fully-warm runs (no targets) --
    # nothing re-analyzes, so nobody consults it.
    project: ProjectSummaries | None = None
    seed_map: dict[str, dict[str, FunctionSeed]] = {}
    if targets and planned_project is not None:
        # v4: the planner already solved the post-change fixpoint for
        # the summary delta -- reuse it as the oracle and seed only the
        # files actually being re-analyzed.
        project = planned_project
        for path, _digest in targets:
            if path in fresh_seeds:
                seed_map[path] = fresh_seeds[path]
            else:
                entry = store.entries.get(path) if store is not None else None
                seed_map[path] = (
                    entry.functions if entry is not None else extract_file_seeds(path)
                )
    elif targets:
        by_module: dict[str, dict[str, FunctionSeed]] = {}
        for path in files:
            entry = store.entries.get(path) if store is not None else None
            if path in fresh_seeds:
                seeds = fresh_seeds[path]
                module_name = (
                    entry.module if entry is not None else module_name_for(Path(path))
                )
            elif entry is not None:
                seeds = entry.functions
                module_name = entry.module
            else:
                seeds = extract_file_seeds(path)
                module_name = module_name_for(Path(path))
            seed_map[path] = seeds
            by_module.setdefault(module_name, {}).update(seeds)
        project = ProjectSummaries(by_module)

    outcomes: dict[str, CachedFile] = {}
    pool_jobs = _effective_jobs(jobs)
    if pool_jobs > 1 and len(targets) >= _POOL_THRESHOLD:
        work = [
            (path, config, requested, digest, seed_map.get(path, {}))
            for path, digest in targets
        ]
        with multiprocessing.Pool(
            processes=pool_jobs, initializer=_pool_init, initargs=(project,)
        ) as pool:
            for path, record in pool.map(_pool_worker, work):
                outcomes[path] = record
    else:
        for path, digest in targets:
            _, record = analyze_file(
                path, config, requested, digest,
                project=project, seeds=seed_map.get(path, {}),
            )
            outcomes[path] = record

    grammar_facts: dict[str, tuple[str, tuple]] = {}
    for path in files:
        if path in outcomes:
            record = outcomes[path]
            if store is not None:
                store.put(path, record)
        else:
            assert store is not None  # only cache hits skip analysis
            record = store.get(path)
        result.findings.extend(record.findings)
        result.suppressed.extend(record.suppressed)
        if record.grammar:
            grammar_facts[path] = (record.module, record.grammar)

    # Project-level checks: once per run, parent process, never cached
    # (they read only the config) and never suppressible.
    for checker in ALL_CHECKERS:
        if requested is not None and checker.code not in requested:
            continue
        result.findings.extend(checker.check_project(config, result.config_path))

    # R006 conformance: judged over the harvested (possibly cached)
    # per-file facts -- pure set comparison, so warm runs pay no parse.
    if config.grammars and (requested is None or "R006" in requested):
        result.findings.extend(grammar_conformance(config, grammar_facts))

    if store is not None:
        store.save()

    result.findings.sort(key=Finding.sort_key)
    if report_only is not None:
        keep = {str(Path(p).resolve()) for p in report_only}
        config_str = (
            str(result.config_path.resolve())
            if result.config_path is not None
            else None
        )

        def _kept(path_str: str) -> bool:
            resolved = str(Path(path_str).resolve())
            return resolved in keep or resolved == config_str

        # R006 findings survive the filter: their evidence spans files,
        # so the anchor site may be clean while the edited file (say, a
        # handler losing a branch) is elsewhere.
        result.findings = [
            f for f in result.findings if f.rule == "R006" or _kept(f.path)
        ]
        result.suppressed = [
            (f, line) for f, line in result.suppressed if _kept(f.path)
        ]
    result.elapsed_s = time.perf_counter() - started
    return result


def finding_path(path: Path) -> str:
    try:
        return str(path.relative_to(Path.cwd()))
    except ValueError:
        return str(path)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description="reprolint: AST-based invariant analysis (R001-R006)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable JSON report"
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rules table and exit"
    )
    parser.add_argument(
        "--cache",
        dest="cache",
        action="store_true",
        default=True,
        help="reuse cached per-file results (default)",
    )
    parser.add_argument(
        "--no-cache",
        dest="cache",
        action="store_false",
        help="ignore and do not write the incremental cache",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="worker processes for files needing analysis (0 = one per CPU)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "report findings only for files changed in git (working tree "
            "vs HEAD, plus untracked); the analysis itself stays "
            "project-wide so cross-module facts and the cache are exact"
        ),
    )
    return parser


def _git_changed_files() -> frozenset[str]:
    """Absolute paths of changed/untracked ``.py`` files per git.
    Raises ``RuntimeError`` on any git failure (not a repo, no HEAD,
    git missing) -- the CLI maps that to exit code 2."""

    def _git(*argv: str) -> str:
        try:
            proc = subprocess.run(
                ["git", *argv], capture_output=True, text=True, check=False
            )
        except FileNotFoundError as exc:
            raise RuntimeError("git not found on PATH") from exc
        if proc.returncode != 0:
            detail = proc.stderr.strip().splitlines()
            raise RuntimeError(
                f"git {argv[0]} failed: {detail[0] if detail else 'unknown error'}"
            )
        return proc.stdout

    root = Path(_git("rev-parse", "--show-toplevel").strip())
    names = _git("diff", "--name-only", "HEAD").splitlines()
    names += _git("ls-files", "--others", "--exclude-standard").splitlines()
    return frozenset(
        str(root / name) for name in names if name.endswith(".py")
    )


def run_cli(argv: Sequence[str] | None = None, stream: TextIO | None = None) -> int:
    out = stream if stream is not None else sys.stdout
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    if args.list_rules:
        for checker in ALL_CHECKERS:
            print(f"{checker.code}  {checker.name}: {checker.summary}", file=out)
        return 0
    rules = None
    if args.rules:
        rules = [token.strip() for token in args.rules.split(",") if token.strip()]
    report_only = None
    if args.changed:
        try:
            report_only = _git_changed_files()
        except RuntimeError as exc:
            # Outside a repo (or any git failure), --changed has nothing
            # to filter by; degrade to the full report rather than fail
            # -- the analysis is identical either way, only the
            # reporting filter is lost.
            print(
                f"reprolint: warning: --changed unavailable ({exc}); "
                "reporting all findings",
                file=sys.stderr,
            )
            report_only = None
    try:
        result = analyze_paths(
            args.paths,
            rules=rules,
            cache=args.cache,
            jobs=args.jobs,
            report_only=report_only,
        )
    except (ConfigError, ValueError, OSError) as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(render_json(result), file=out)
    else:
        print(render_text(result), file=out)
    return 0 if result.ok else 1


def main(argv: Sequence[str] | None = None) -> int:  # pragma: no cover
    return run_cli(argv)
