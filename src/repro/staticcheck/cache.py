"""The incremental analysis cache.

reprolint's per-file analysis is pure: the findings for a file are a
function of (analyzer version, config, requested rules, file content).
That makes results safely memoizable -- the cache stores, per file, the
content hash it was analyzed under plus the full outcome (findings,
suppressed findings, module name, import targets), keyed by a single
*config hash* over everything file-independent.  A warm run on an
unchanged tree reloads every outcome and touches no ASTs at all.

Invalidation is deliberately conservative, mirroring the R004 layer
graph: when a file's content hash changes (or a file appears or
disappears), every cached file whose *transitive imports* reach the
changed module is re-analyzed too.  Per-file analysis today never reads
another file's content, so this over-invalidates -- but it means the
cache stays correct the day a checker grows cross-module eyes, and it is
the same import graph R004 already extracts, at zero extra parse cost.

Safety rails, each of which discards the cache wholesale rather than
risk a stale finding:

* the header records ``ANALYZER_VERSION`` + config hash + requested
  rules (one composite key) -- new analyzer, edited ``[tool.reprolint]``
  table, or a different ``--rules`` selection all miss;
* the header records the working directory -- finding paths are stored
  repo-relative, so a cache written from another cwd is unusable;
* unreadable/corrupt cache files load as empty (never an error: the
  cache is an accelerator, not a dependency).

The cache file (``.reprolint-cache.json``, next to ``pyproject.toml``)
is a build artifact and belongs in ``.gitignore``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.staticcheck.config import ReprolintConfig
from repro.staticcheck.model import ANALYZER_VERSION, Finding

__all__ = [
    "AnalysisCache",
    "CacheStats",
    "CachedFile",
    "CACHE_FILENAME",
    "CACHE_SCHEMA",
    "config_hash",
    "content_hash",
    "dirty_closure",
]

CACHE_FILENAME = ".reprolint-cache.json"
CACHE_SCHEMA = "repro.reprolint-cache/1"


def content_hash(path: Path) -> str:
    """sha256 of the file's bytes (truncated: 64 bits of hex is plenty
    for change detection and keeps the cache file readable)."""
    return hashlib.sha256(path.read_bytes()).hexdigest()[:16]


def config_hash(
    config: ReprolintConfig, rules: Sequence[str] | frozenset[str] | None = None
) -> str:
    """One hash over everything file-independent that analysis results
    depend on: the analyzer version, the requested-rules selection, and
    the full config.  Any change means no cached outcome is trustworthy.
    """
    payload = {
        "analyzer": ANALYZER_VERSION,
        "rules": sorted(rules) if rules is not None else None,
        "exact_modules": list(config.exact_modules),
        "deterministic_modules": list(config.deterministic_modules),
        "allowed_imports": {
            key: list(value) for key, value in sorted(config.allowed_imports.items())
        },
        "internal_root": config.internal_root,
        "private_attrs": dict(sorted(config.private_attrs.items())),
        "event_classes": list(config.event_classes),
        "per_module_disable": {
            key: list(value)
            for key, value in sorted(config.per_module_disable.items())
        },
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass(slots=True)
class CacheStats:
    """What one cached run did: *hits* were reloaded, *misses* analyzed.
    ``invalidated`` counts the misses caused by the import closure rather
    than by the file's own content changing."""

    hits: int = 0
    misses: int = 0
    invalidated: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidated": self.invalidated,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass(slots=True)
class CachedFile:
    """One file's complete analysis outcome."""

    hash: str
    module: str
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[tuple[Finding, int]] = field(default_factory=list)
    imports: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "hash": self.hash,
            "module": self.module,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [
                {**f.to_dict(), "suppressed_at": line} for f, line in self.suppressed
            ],
            "imports": list(self.imports),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CachedFile":
        return cls(
            hash=data["hash"],
            module=data["module"],
            findings=[Finding.from_dict(f) for f in data["findings"]],
            suppressed=[
                (Finding.from_dict(f), f["suppressed_at"]) for f in data["suppressed"]
            ],
            imports=tuple(data["imports"]),
        )


def _imports_module(target: str, module: str) -> bool:
    """Whether an import of *target* depends on *module*.  Exact match,
    plus both prefix directions: importing ``pkg.sub`` executes ``pkg``'s
    ``__init__`` on the way down, and ``from pkg import sub`` records
    only ``pkg`` while really binding ``pkg.sub``."""
    return (
        target == module
        or target.startswith(module + ".")
        or module.startswith(target + ".")
    )


def dirty_closure(
    changed_modules: set[str],
    clean: Mapping[str, tuple[str, tuple[str, ...]]],
) -> set[str]:
    """The reverse-import transitive closure: which of the *clean* files
    (path -> ``(module, imports)``) must be re-analyzed because their
    transitive imports reach a module in *changed_modules*.  Fixpoint
    iteration -- the graph is small (one node per file)."""
    dirty: set[str] = set()
    modules = set(changed_modules)
    progress = True
    while progress:
        progress = False
        for path, (module, imports) in clean.items():
            if path in dirty:
                continue
            if any(
                _imports_module(target, changed)
                for target in imports
                for changed in modules
            ):
                dirty.add(path)
                modules.add(module)
                progress = True
    return dirty


class AnalysisCache:
    """The on-disk cache: load, plan the dirty set, reuse, store, save."""

    def __init__(self, path: Path, key: str) -> None:
        self.path = path
        self.key = key
        self.entries: dict[str, CachedFile] = {}

    @classmethod
    def load(cls, path: Path, key: str) -> "AnalysisCache":
        """Read *path*; any mismatch (schema, key, cwd) or damage yields
        an empty cache under the new key."""
        cache = cls(path, key)
        try:
            raw = json.loads(path.read_text())
        except (OSError, ValueError):
            return cache
        if not isinstance(raw, dict):
            return cache
        if raw.get("schema") != CACHE_SCHEMA or raw.get("key") != key:
            return cache
        if raw.get("cwd") != os.getcwd():
            return cache  # finding paths are cwd-relative; see module doc
        entries = raw.get("files")
        if not isinstance(entries, dict):
            return cache
        try:
            cache.entries = {
                file_path: CachedFile.from_dict(entry)
                for file_path, entry in entries.items()
            }
        except (KeyError, TypeError):
            cache.entries = {}
        return cache

    # ------------------------------------------------------------------

    def plan(self, hashes: Mapping[str, str]) -> tuple[set[str], set[str]]:
        """Partition the current file set (absolute path -> content
        hash) into ``(changed, invalidated)``: *changed* files have no
        reusable entry (new or edited), *invalidated* files are clean
        themselves but sit in the reverse-import closure of a change.
        Entries for files no longer present are dropped here and their
        modules count as changed."""
        changed = {
            path
            for path, digest in hashes.items()
            if path not in self.entries or self.entries[path].hash != digest
        }
        removed = set(self.entries) - set(hashes)
        changed_modules = {
            self.entries[path].module for path in removed
        } | {
            self.entries[path].module if path in self.entries else _module_guess(path)
            for path in changed
        }
        for path in removed:
            del self.entries[path]
        if not changed_modules:
            return changed, set()
        clean = {
            path: (entry.module, entry.imports)
            for path, entry in self.entries.items()
            if path not in changed
        }
        invalidated = dirty_closure(changed_modules, clean)
        return changed, invalidated

    def get(self, path: str) -> CachedFile:
        return self.entries[path]

    def put(self, path: str, record: CachedFile) -> None:
        self.entries[path] = record

    def save(self) -> None:
        """Atomic write (tmp + replace) so a crashed run never leaves a
        truncated cache behind.  I/O failure is swallowed: a cache that
        cannot be written just means the next run is cold."""
        payload = {
            "schema": CACHE_SCHEMA,
            "key": self.key,
            "cwd": os.getcwd(),
            "files": {
                file_path: entry.to_dict()
                for file_path, entry in sorted(self.entries.items())
            },
        }
        try:
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            tmp.write_text(json.dumps(payload, indent=1, sort_keys=True))
            tmp.replace(self.path)
        except OSError:
            pass


def _module_guess(path: str) -> str:
    """Module name for a file with no cache entry (a new file): resolved
    the same way the loader does, so closure matching sees the name its
    future importers will use."""
    from repro.staticcheck.loader import module_name_for

    return module_name_for(Path(path))
