"""The incremental analysis cache.

reprolint's per-file analysis is pure: the findings for a file are a
function of (analyzer version, config, requested rules, file content).
That makes results safely memoizable -- the cache stores, per file, the
content hash it was analyzed under plus the full outcome (findings,
suppressed findings, module name, import targets), keyed by a single
*config hash* over everything file-independent.  A warm run on an
unchanged tree reloads every outcome and touches no ASTs at all.

v3 keys invalidation on *functions*, not files.  Every cached file
carries its function seeds (structure-only body hashes + call refs --
see :mod:`repro.staticcheck.summaries`); when a file's content hash
changes, :meth:`AnalysisCache.plan` re-extracts its seeds, diffs the
two call graphs (:mod:`repro.staticcheck.callgraph`), and re-analyzes
only the files owning a dirty function: a changed body, a retargeted
call ref, or anything in their reverse-*call* closure.  The checkers
now really do have cross-module eyes (summaries flow through
``ProjectSummaries``), so this is the exact dependency set -- a
comment-only edit dirties zero functions and re-analyzes one file,
where the v2 reverse-*import* closure re-analyzed 14.  The v2 closure
(``dirty_closure`` over the ``imports`` field) is kept as the fallback
when no seed extractor is supplied, and as the bench's point of
comparison.

v4 cuts the reverse-call closure with a **summary delta**: what a
caller's analysis actually consumed from a callee is its fixpoint
``FunctionInfo`` (return taints + mutated params), so after
re-extracting a changed function's seeds the planner solves the old
and new ``ProjectSummaries`` fixpoints and re-analyzes a caller only
when some callee's *info* moved -- one hop is enough, because fixpoint
infos already encode transitive propagation.  A body edit that leaves
the summary identical (renamed local, reordered statements, new
logging) re-analyzes exactly the edited file, where the v3 closure
walked every transitive caller.  ``skipped_by_summary`` counts the
functions the v3 closure would have dirtied that the delta skipped,
and ``closure_files`` what the v3 plan would have re-analyzed -- the
bench's point of comparison.  The new fixpoint rides back on the plan
so the runner never solves it twice.

Safety rails, each of which discards the cache wholesale rather than
risk a stale finding:

* the header records ``ANALYZER_VERSION`` + config hash + requested
  rules (one composite key) -- new analyzer, edited ``[tool.reprolint]``
  table, or a different ``--rules`` selection all miss;
* the header records the working directory -- finding paths are stored
  repo-relative, so a cache written from another cwd is unusable;
* unreadable/corrupt cache files load as empty (never an error: the
  cache is an accelerator, not a dependency).

The cache file (``.reprolint-cache.json``, next to ``pyproject.toml``)
is a build artifact and belongs in ``.gitignore``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.staticcheck.callgraph import (
    CallGraph,
    changed_functions,
    invalidated_functions,
)
from repro.staticcheck.config import ReprolintConfig
from repro.staticcheck.model import ANALYZER_VERSION, Finding
from repro.staticcheck.summaries import FunctionSeed, ProjectSummaries

__all__ = [
    "AnalysisCache",
    "CachePlan",
    "CacheStats",
    "CachedFile",
    "CACHE_FILENAME",
    "CACHE_SCHEMA",
    "config_hash",
    "content_hash",
    "dirty_closure",
]

CACHE_FILENAME = ".reprolint-cache.json"
#: /2: entries carry per-function seeds; planning is per-function.
#: /3: entries carry R006 grammar facts (op tags harvested per file).
CACHE_SCHEMA = "repro.reprolint-cache/3"


def content_hash(path: Path) -> str:
    """sha256 of the file's bytes (truncated: 64 bits of hex is plenty
    for change detection and keeps the cache file readable)."""
    return hashlib.sha256(path.read_bytes()).hexdigest()[:16]


def config_hash(
    config: ReprolintConfig, rules: Sequence[str] | frozenset[str] | None = None
) -> str:
    """One hash over everything file-independent that analysis results
    depend on: the analyzer version, the requested-rules selection, and
    the full config.  Any change means no cached outcome is trustworthy.
    """
    payload = {
        "analyzer": ANALYZER_VERSION,
        "rules": sorted(rules) if rules is not None else None,
        "exact_modules": list(config.exact_modules),
        "deterministic_modules": list(config.deterministic_modules),
        "allowed_imports": {
            key: list(value) for key, value in sorted(config.allowed_imports.items())
        },
        "internal_root": config.internal_root,
        "private_attrs": dict(sorted(config.private_attrs.items())),
        "event_classes": list(config.event_classes),
        "per_module_disable": {
            key: list(value)
            for key, value in sorted(config.per_module_disable.items())
        },
        "grammars": [
            [g.name, list(g.emit), list(g.handle), list(g.replay), list(g.pure)]
            for g in config.grammars
        ],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass(slots=True)
class CacheStats:
    """What one cached run did: *hits* were reloaded, *misses* analyzed.
    ``invalidated`` counts the misses caused by the dependency closure
    rather than by the file's own content changing;
    ``changed_functions`` / ``invalidated_functions`` are the
    per-function counters behind those file decisions (how many bodies
    actually changed, and how many clean-file functions remained dirty
    after the summary-delta cut); ``skipped_by_summary`` counts the
    functions the v3 reverse-call closure would have dirtied whose
    consumed summaries provably didn't move, and ``closure_files`` how
    many files that closure would have re-analyzed."""

    hits: int = 0
    misses: int = 0
    invalidated: int = 0
    changed_functions: int = 0
    invalidated_functions: int = 0
    skipped_by_summary: int = 0
    closure_files: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidated": self.invalidated,
            "changed_functions": self.changed_functions,
            "invalidated_functions": self.invalidated_functions,
            "skipped_by_summary": self.skipped_by_summary,
            "closure_files": self.closure_files,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass(slots=True)
class CachePlan:
    """One :meth:`AnalysisCache.plan` decision: which files to
    re-analyze and why, plus the function seeds already extracted from
    the changed files (so the runner reuses them for the project
    fixpoint instead of parsing twice) and the solved *new* fixpoint
    itself (``project``, computed for the summary delta -- the runner
    reuses it as the cross-module oracle instead of solving again)."""

    changed: set[str] = field(default_factory=set)
    invalidated: set[str] = field(default_factory=set)
    fresh_seeds: dict[str, dict[str, FunctionSeed]] = field(default_factory=dict)
    changed_functions: int = 0
    invalidated_functions: int = 0
    skipped_by_summary: int = 0
    closure_files: int = 0
    project: ProjectSummaries | None = None


@dataclass(slots=True)
class CachedFile:
    """One file's complete analysis outcome, plus its function seeds
    (the per-function hashes + interprocedural facts the planner and
    the project fixpoint reuse without re-parsing the file)."""

    hash: str
    module: str
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[tuple[Finding, int]] = field(default_factory=list)
    imports: tuple[str, ...] = ()
    functions: dict[str, FunctionSeed] = field(default_factory=dict)
    #: R006 facts: ``(grammar, role, tag, line)`` rows harvested from
    #: this file (role: emit / handle / replay / *_decl).
    grammar: tuple[tuple[str, str, str, int], ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "hash": self.hash,
            "module": self.module,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [
                {**f.to_dict(), "suppressed_at": line} for f, line in self.suppressed
            ],
            "imports": list(self.imports),
            "functions": {
                fq: seed.to_dict() for fq, seed in sorted(self.functions.items())
            },
            "grammar": [list(fact) for fact in self.grammar],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CachedFile":
        return cls(
            hash=data["hash"],
            module=data["module"],
            findings=[Finding.from_dict(f) for f in data["findings"]],
            suppressed=[
                (Finding.from_dict(f), f["suppressed_at"]) for f in data["suppressed"]
            ],
            imports=tuple(data["imports"]),
            functions={
                fq: FunctionSeed.from_dict(seed)
                for fq, seed in data.get("functions", {}).items()
            },
            grammar=tuple(
                (str(name), str(role), str(tag), int(line))
                for name, role, tag, line in data.get("grammar", ())
            ),
        )


def _imports_module(target: str, module: str) -> bool:
    """Whether an import of *target* depends on *module*.  Exact match,
    plus both prefix directions: importing ``pkg.sub`` executes ``pkg``'s
    ``__init__`` on the way down, and ``from pkg import sub`` records
    only ``pkg`` while really binding ``pkg.sub``."""
    return (
        target == module
        or target.startswith(module + ".")
        or module.startswith(target + ".")
    )


def dirty_closure(
    changed_modules: set[str],
    clean: Mapping[str, tuple[str, tuple[str, ...]]],
) -> set[str]:
    """The reverse-import transitive closure: which of the *clean* files
    (path -> ``(module, imports)``) must be re-analyzed because their
    transitive imports reach a module in *changed_modules*.  Fixpoint
    iteration -- the graph is small (one node per file)."""
    dirty: set[str] = set()
    modules = set(changed_modules)
    progress = True
    while progress:
        progress = False
        for path, (module, imports) in clean.items():
            if path in dirty:
                continue
            if any(
                _imports_module(target, changed)
                for target in imports
                for changed in modules
            ):
                dirty.add(path)
                modules.add(module)
                progress = True
    return dirty


class AnalysisCache:
    """The on-disk cache: load, plan the dirty set, reuse, store, save."""

    def __init__(self, path: Path, key: str) -> None:
        self.path = path
        self.key = key
        self.entries: dict[str, CachedFile] = {}

    @classmethod
    def load(cls, path: Path, key: str) -> "AnalysisCache":
        """Read *path*; any mismatch (schema, key, cwd) or damage yields
        an empty cache under the new key."""
        cache = cls(path, key)
        try:
            raw = json.loads(path.read_text())
        except (OSError, ValueError):
            return cache
        if not isinstance(raw, dict):
            return cache
        if raw.get("schema") != CACHE_SCHEMA or raw.get("key") != key:
            return cache
        if raw.get("cwd") != os.getcwd():
            return cache  # finding paths are cwd-relative; see module doc
        entries = raw.get("files")
        if not isinstance(entries, dict):
            return cache
        try:
            cache.entries = {
                file_path: CachedFile.from_dict(entry)
                for file_path, entry in entries.items()
            }
        except (KeyError, TypeError):
            cache.entries = {}
        return cache

    # ------------------------------------------------------------------

    def plan(
        self,
        hashes: Mapping[str, str],
        extract: "Callable[[str], dict[str, FunctionSeed]] | None" = None,
    ) -> "CachePlan":
        """Decide what to re-analyze for the current file set (absolute
        path -> content hash).  *changed* files have no reusable entry
        (new or edited); *invalidated* files are clean themselves but
        depend on a change.  Entries for files no longer present are
        dropped here.

        With *extract* (a ``path -> seeds`` callback, normally
        ``summaries.extract_file_seeds``), the dependency unit is the
        function: changed files are re-seeded, the old and new call
        graphs are diffed, and only files owning a dirty function
        invalidate -- where dirty means a changed body, a retargeted
        ref, or a consumed callee whose old and new fixpoint summaries
        differ (the v4 summary-delta cut; callers of a function whose
        summary provably didn't move are skipped).  The extracted seeds
        and the solved fixpoint come back in the plan so the runner
        never parses a changed file or solves the oracle twice.
        Without *extract*, the v2 reverse-import closure decides."""
        changed = {
            path
            for path, digest in hashes.items()
            if path not in self.entries or self.entries[path].hash != digest
        }
        removed = set(self.entries) - set(hashes)
        if extract is None:
            return self._plan_imports(hashes, changed, removed)
        if not changed and not removed:
            return CachePlan(changed=changed)
        old_files = {
            path: (entry.module, entry.functions)
            for path, entry in self.entries.items()
        }
        fresh_seeds = {path: extract(path) for path in sorted(changed)}
        for path in removed:
            del self.entries[path]
        new_files: dict[str, tuple[str, Mapping[str, FunctionSeed]]] = {}
        for path in hashes:
            if path in changed:
                module = (
                    self.entries[path].module
                    if path in self.entries
                    else _module_guess(path)
                )
                new_files[path] = (module, fresh_seeds[path])
            else:
                entry = self.entries[path]
                new_files[path] = (entry.module, entry.functions)
        old_graph = CallGraph(old_files)
        new_graph = CallGraph(new_files)
        hash_changed = changed_functions(old_graph, new_graph)
        closure = invalidated_functions(old_graph, new_graph, hash_changed)
        # The summary-delta cut: solve both fixpoints and dirty a
        # caller only when a callee's consumed info moved.  One hop
        # suffices -- if g's change propagates through f to e, then
        # f's own fixpoint info moved too, and e has an edge to f.
        old_project = ProjectSummaries(_seeds_by_module(old_files))
        new_project = ProjectSummaries(_seeds_by_module(new_files))
        dirty = set(hash_changed)
        for key in new_graph.keys():
            if key not in dirty and old_graph.resolutions(key) != new_graph.resolutions(key):
                dirty.add(key)
        summary_moved = {
            key
            for key in set(old_graph.keys()) | set(new_graph.keys())
            if old_project.info(key) != new_project.info(key)
        }
        for graph in (old_graph, new_graph):
            for key in graph.keys():
                if key in dirty:
                    continue
                if any(
                    target is not None and target in summary_moved
                    for _ref, target in graph.resolutions(key)
                ):
                    dirty.add(key)
        closure_owners = {
            new_graph.owner_file(key) for key in closure
        } - {None}
        invalidated: set[str] = set()
        ripple = 0
        for key in dirty:
            owner = new_graph.owner_file(key)
            if owner is not None and owner not in changed:
                ripple += 1
                invalidated.add(owner)
        return CachePlan(
            changed=changed,
            invalidated=invalidated,
            fresh_seeds=fresh_seeds,
            changed_functions=len(hash_changed),
            invalidated_functions=ripple,
            skipped_by_summary=len(closure - dirty),
            closure_files=len(changed | closure_owners),
            project=new_project,
        )

    def _plan_imports(
        self, hashes: Mapping[str, str], changed: set[str], removed: set[str]
    ) -> "CachePlan":
        """The v2 fallback: whole-file reverse-import closure."""
        changed_modules = {
            self.entries[path].module for path in removed
        } | {
            self.entries[path].module if path in self.entries else _module_guess(path)
            for path in changed
        }
        for path in removed:
            del self.entries[path]
        if not changed_modules:
            return CachePlan(changed=changed)
        clean = {
            path: (entry.module, entry.imports)
            for path, entry in self.entries.items()
            if path not in changed
        }
        invalidated = dirty_closure(changed_modules, clean)
        return CachePlan(changed=changed, invalidated=invalidated)

    def get(self, path: str) -> CachedFile:
        return self.entries[path]

    def put(self, path: str, record: CachedFile) -> None:
        self.entries[path] = record

    def save(self) -> None:
        """Atomic write (tmp + replace) so a crashed run never leaves a
        truncated cache behind.  I/O failure is swallowed: a cache that
        cannot be written just means the next run is cold."""
        payload = {
            "schema": CACHE_SCHEMA,
            "key": self.key,
            "cwd": os.getcwd(),
            "files": {
                file_path: entry.to_dict()
                for file_path, entry in sorted(self.entries.items())
            },
        }
        try:
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            tmp.write_text(json.dumps(payload, indent=1, sort_keys=True))
            tmp.replace(self.path)
        except OSError:
            pass


def _seeds_by_module(
    files: Mapping[str, tuple[str, Mapping[str, FunctionSeed]]]
) -> dict[str, dict[str, FunctionSeed]]:
    """``{path: (module, seeds)}`` folded to the ``{module: seeds}``
    shape ``ProjectSummaries`` consumes (same merge the runner does)."""
    by_module: dict[str, dict[str, FunctionSeed]] = {}
    for path in sorted(files):
        module, seeds = files[path]
        by_module.setdefault(module, {}).update(seeds)
    return by_module


def _module_guess(path: str) -> str:
    """Module name for a file with no cache entry (a new file): resolved
    the same way the loader does, so closure matching sees the name its
    future importers will use."""
    from repro.staticcheck.loader import module_name_for

    return module_name_for(Path(path))
