"""File discovery and per-module source model.

The loader turns a set of paths into :class:`SourceModule` objects: the
parsed AST, the dotted module name (resolved by walking up through
``__init__.py`` packages, so ``src/repro/core/base.py`` analyzes as
``repro.core.base`` no matter where the analyzer is invoked from), the
suppression table, and the enclosing-function map that lets an
``allow[...]`` comment on a ``def`` line waive findings anywhere in that
function's body.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.staticcheck.dataflow import ModuleDataflow
from repro.staticcheck.model import Suppression, parse_suppressions

__all__ = [
    "SourceModule",
    "iter_python_files",
    "load_module",
    "module_name_for",
    "module_imports",
]


def module_name_for(path: Path) -> str:
    """The dotted module name of *path*: climb while the parent directory
    is a package (has ``__init__.py``).  A file outside any package is its
    own top-level module (fixtures, scripts)."""
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


@dataclass(slots=True)
class SourceModule:
    """One parsed source file plus everything the checkers and the
    suppression matcher need."""

    path: Path
    name: str
    source: str
    tree: ast.Module
    suppressions: list[Suppression] = field(default_factory=list)
    #: ``(first_line, last_line, def_line)`` per function, innermost last.
    function_spans: list[tuple[int, int, int]] = field(default_factory=list)
    #: Cross-module oracle (a ``summaries.ProjectSummaries``), attached
    #: by the runner when a whole-project analysis is available.
    project: object | None = None
    #: Lazily-built dataflow engine, shared by every flow-aware checker.
    _dataflow: ModuleDataflow | None = None

    def dataflow(self) -> ModuleDataflow:
        """The module's dataflow analysis, built on first use so purely
        syntactic runs (e.g. ``--rules R001``) never pay for it."""
        if self._dataflow is None:
            self._dataflow = ModuleDataflow(
                self.tree, module_name=self.name, project=self.project
            )
        return self._dataflow

    def suppression_for(self, rule: str, line: int) -> Suppression | None:
        """The suppression waiving *rule* at *line*: an allow comment
        anchored to the line itself (trailing, or a block comment
        directly above), else one anchored to the ``def`` line of any
        enclosing function (so a whole documented-inexact helper needs
        one comment, not one per expression)."""
        by_anchor = {s.anchor: s for s in self.suppressions}
        direct = by_anchor.get(line)
        if direct is not None and direct.covers(rule):
            return direct
        for first, last, def_line in self.function_spans:
            if first <= line <= last:
                candidate = by_anchor.get(def_line)
                if candidate is not None and candidate.covers(rule):
                    return candidate
        return None


def _function_spans(tree: ast.Module) -> list[tuple[int, int, int]]:
    spans: list[tuple[int, int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            end = node.end_lineno if node.end_lineno is not None else node.lineno
            spans.append((node.lineno, end, node.lineno))
    return spans


def load_module(path: Path) -> SourceModule:
    """Parse *path* into a :class:`SourceModule`.  Raises ``SyntaxError``
    for unparsable source -- the runner converts that into a finding."""
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    return SourceModule(
        path=path,
        name=module_name_for(path),
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
        function_spans=_function_spans(tree),
    )


def module_imports(tree: ast.Module, module_name: str) -> list[tuple[str, int]]:
    """Every imported module in *tree* as ``(dotted_name, line)``;
    relative imports are resolved against *module_name*.  Shared by the
    R004 layering checker and the incremental cache's reverse-import
    invalidation."""
    out: list[tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out.append((alias.name, node.lineno))
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                parts = module_name.split(".")
                # level 1 = current package; each extra level climbs.
                base = parts[: len(parts) - node.level]
                target = ".".join(base + ([node.module] if node.module else []))
            else:
                target = node.module or ""
            if target:
                out.append((target, node.lineno))
    return out


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Every ``.py`` file under *paths* (files pass through, directories
    are walked), sorted for deterministic output; hidden directories and
    ``__pycache__`` are skipped."""
    seen: set[Path] = set()
    for entry in paths:
        entry = Path(entry)
        if entry.is_file():
            candidates: Iterable[Path] = [entry] if entry.suffix == ".py" else []
        else:
            candidates = entry.rglob("*.py")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            if any(
                part.startswith(".") or part == "__pycache__"
                for part in resolved.parts
            ):
                continue
            seen.add(resolved)
    yield from sorted(seen)
