"""The project call graph and per-function cache invalidation.

v2 invalidated whole files through the reverse *import* closure: one
edit to ``repro/core/pairing.py`` re-analyzed every file that could
reach it through an import chain -- 14 files for a one-line comment
tweak.  v3 keys invalidation on what actually changed: every function
carries a structure-only body hash (``ast.dump``, so comments and
line-number shifts are free) and a list of interprocedural call refs.
A file edit dirties exactly the functions whose hashes changed, plus --
through the reverse *call* closure -- the functions whose analysis
consumed those summaries.  Files re-analyze only when they own a dirty
function.

Two graphs are compared (the cached one and the one implied by the
edit) because a dirty function is not only a changed body: adding or
removing a function changes what a caller's ref *resolves to*, so
resolution diffs dirty callers even when their bodies are untouched.

:class:`RefResolver` is the one place interprocedural refs (``":f"`` /
``"self.m"`` / dotted names -- see ``ModuleDataflow.call_target``) are
mapped to ``(module, function)`` keys; the summary fixpoint in
:mod:`repro.staticcheck.summaries` shares it so the analysis and its
invalidation can never disagree about an edge.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

__all__ = [
    "RefResolver",
    "CallGraph",
    "changed_functions",
    "invalidated_functions",
]

#: Key of the pseudo-function holding a module's top-level statements.
MODULE_KEY = "<module>"

#: A function's identity in the graph: (module dotted name, fq name
#: where fq is "f", "Cls.m", or MODULE_KEY).
Key = tuple[str, str]


class RefResolver:
    """Maps an interprocedural ref, as seen from one module, onto the
    ``(module, fq)`` key it denotes -- or ``None`` when the ref leaves
    the analyzed project (stdlib, third-party, dynamic)."""

    def __init__(self, functions_by_module: Mapping[str, Iterable[str]]) -> None:
        self._functions: dict[str, frozenset[str]] = {
            module: frozenset(fqs) for module, fqs in functions_by_module.items()
        }
        # "self.m" refs carry no class name; pick the sorted-first
        # matching method deterministically (same-name methods across
        # classes in one module are conflated, conservatively).
        self._methods: dict[tuple[str, str], str] = {}
        for module, fqs in self._functions.items():
            for fq in sorted(fqs):
                owner, _, name = fq.rpartition(".")
                if owner:
                    self._methods.setdefault((module, name), fq)

    def resolve(self, module: str, ref: str) -> Key | None:
        if ref.startswith(":"):
            fq = ref[1:]
            if fq in self._functions.get(module, ()):
                return (module, fq)
            return None
        if ref.startswith("self."):
            fq = self._methods.get((module, ref[5:]))
            return (module, fq) if fq is not None else None
        # Dotted: split at the longest prefix naming an analyzed module;
        # the remainder is "func" or "Cls.method".
        parts = ref.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            target_module = ".".join(parts[:cut])
            if target_module not in self._functions:
                continue
            rest = parts[cut:]
            if len(rest) > 2:
                return None
            fq = ".".join(rest)
            if fq in self._functions[target_module]:
                return (target_module, fq)
            return None
        return None


class CallGraph:
    """Hashes + resolved call edges for one snapshot of the project.

    Built from ``{path: (module_name, {fq: seed})}`` where each seed is
    duck-typed with ``.hash`` and ``.calls`` (a
    :class:`repro.staticcheck.summaries.FunctionSeed`).
    """

    def __init__(
        self, files: Mapping[str, tuple[str, Mapping[str, object]]]
    ) -> None:
        self._hash: dict[Key, str] = {}
        self._refs: dict[Key, tuple[str, ...]] = {}
        self._owner: dict[Key, str] = {}
        by_module: dict[str, set[str]] = {}
        for path in sorted(files):
            module, seeds = files[path]
            by_module.setdefault(module, set()).update(seeds)
            for fq, seed in seeds.items():
                key = (module, fq)
                self._hash[key] = seed.hash
                self._refs[key] = tuple(seed.calls)
                self._owner[key] = path
        self.resolver = RefResolver(by_module)

    def keys(self) -> Iterable[Key]:
        return self._hash.keys()

    def hash_of(self, key: Key) -> str:
        return self._hash.get(key, "\0missing")

    def owner_file(self, key: Key) -> str | None:
        return self._owner.get(key)

    def resolutions(self, key: Key) -> tuple[tuple[str, Key | None], ...]:
        """Each ref of *key* with what it resolves to, sorted -- the
        unit compared across snapshots to detect retargeted calls."""
        module = key[0]
        return tuple(
            (ref, self.resolver.resolve(module, ref))
            for ref in sorted(self._refs.get(key, ()))
        )


def changed_functions(old: CallGraph, new: CallGraph) -> set[Key]:
    """Keys whose body hash differs between snapshots (including
    functions that exist on only one side)."""
    keys = set(old.keys()) | set(new.keys())
    return {key for key in keys if old.hash_of(key) != new.hash_of(key)}


def invalidated_functions(
    old: CallGraph, new: CallGraph, changed: set[Key] | None = None
) -> set[Key]:
    """All dirty keys: hash changes, resolution changes, and their
    reverse-call closure over both snapshots' edges."""
    dirty = set(changed_functions(old, new) if changed is None else changed)
    for key in new.keys():
        if key not in dirty and old.resolutions(key) != new.resolutions(key):
            dirty.add(key)
    reverse: dict[Key, set[Key]] = {}
    for graph in (old, new):
        for key in graph.keys():
            for _ref, target in graph.resolutions(key):
                if target is not None:
                    reverse.setdefault(target, set()).add(key)
    work = list(dirty)
    while work:
        target = work.pop()
        for caller in reverse.get(target, ()):
            if caller not in dirty:
                dirty.add(caller)
                work.append(caller)
    return dirty
