"""Text and JSON reporters.

Text is for humans at a terminal (one ``path:line: RULE message`` per
finding plus a summary); JSON (schema ``repro.reprolint/4``) is for the
bench runner and any CI tooling that wants the counts without parsing
prose.

Schema history:

* ``repro.reprolint/1`` -- PR 4: findings, counts, suppressions.
* ``repro.reprolint/2`` -- PR 5: adds ``analyzer_version``,
  ``config_hash`` (the composite incremental-cache key), ``cache``
  hit/miss statistics (``null`` when the cache was off), and a ``trace``
  list on each finding (the dataflow engine's origin-to-sink taint
  trail, empty for purely syntactic findings).
* ``repro.reprolint/3`` -- PR 9: traces may cross function and
  module boundaries (``os.getpid (pkg.helpers:12) -> seed_for() return
  (line 88)``), and the ``cache`` block gains ``changed_functions`` /
  ``invalidated_functions`` (per-function invalidation counters).
* ``repro.reprolint/4`` -- this PR: adds rule R006 (message-grammar
  conformance, cross-file traces naming emit / dispatch / replay
  sites), and the ``cache`` block gains ``skipped_by_summary`` (v3
  reverse-closure functions the summary delta proved clean) and
  ``closure_files`` (what the v3 plan would have re-analyzed).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.staticcheck.runner import AnalysisResult

__all__ = ["render_text", "render_json", "JSON_SCHEMA"]

JSON_SCHEMA = "repro.reprolint/4"


def _cache_note(result: "AnalysisResult") -> str:
    stats = result.cache_stats
    if stats is None:
        return ""
    return f"; cache: {stats.hits} hit / {stats.misses} analyzed"


def render_text(result: "AnalysisResult") -> str:
    lines = [finding.render() for finding in result.findings]
    suppressed = len(result.suppressed)
    if result.findings:
        by_rule = ", ".join(
            f"{rule}: {count}" for rule, count in result.counts_by_rule().items()
        )
        lines.append(
            f"{len(result.findings)} finding(s) [{by_rule}] in "
            f"{result.files} file(s); {suppressed} suppressed"
            f"{_cache_note(result)} ({result.elapsed_s * 1000:.0f} ms)"
        )
    else:
        lines.append(
            f"clean: {result.files} file(s), 0 findings, "
            f"{suppressed} suppressed{_cache_note(result)} "
            f"({result.elapsed_s * 1000:.0f} ms)"
        )
    return "\n".join(lines)


def render_json(result: "AnalysisResult") -> str:
    payload = {
        "schema": JSON_SCHEMA,
        "analyzer_version": result.analyzer_version,
        "files": result.files,
        "elapsed_s": result.elapsed_s,
        "findings": [finding.to_dict() for finding in result.findings],
        "counts_by_rule": result.counts_by_rule(),
        "suppressed": [
            {**finding.to_dict(), "suppressed_at": line}
            for finding, line in result.suppressed
        ],
        "suppressed_counts_by_rule": result.suppressed_counts_by_rule(),
        "config": str(result.config_path) if result.config_path else None,
        "config_hash": result.config_hash,
        "cache": result.cache_stats.to_dict() if result.cache_stats else None,
        "ok": result.ok,
    }
    return json.dumps(payload, indent=2)
