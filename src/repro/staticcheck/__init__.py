"""``reprolint``: AST-based invariant analysis for this repository.

The test suite can only catch an invariant violation that a test happens
to exercise; ``reprolint`` enforces the codebase's hard-won correctness
properties *mechanically on every file*:

* **R001 float-contamination** -- no float-producing operation inside a
  module declared *exact* (the ``int64 -> float64`` promotion trap that
  silently corrupted ``unpair`` beyond ``2**53`` until PR 1 fixed it).
* **R002 determinism** -- no unseeded randomness, wall-clock reads, or
  unordered-``set`` iteration inside modules whose replay must be
  bit-identical (crash recovery, fault injection, the simulation).
* **R003 snapshot-completeness** -- every ``self.X`` assigned in
  ``__init__`` of a class with ``snapshot_state``/``restore_state`` must
  be captured or restored (the scalars-only engine snapshot bug fixed in
  PR 3, now caught at lint time).
* **R004 layering** -- the import DAG (``pairing`` never imports
  ``arrays``/``webcompute``), no cross-module private-attribute access,
  no dead imports.
* **R005 event-discipline** -- mutating methods of the engine classes
  publish a typed event or carry a reviewed suppression.

Configuration lives in ``pyproject.toml`` under ``[tool.reprolint]``;
individual findings are waived with a reviewed comment::

    x = estimate / 2  # reprolint: allow[R001] documented float estimate

A suppression that matches no finding is itself reported (**R000**), so
stale waivers cannot accumulate.  Run as ``python -m repro.staticcheck
src/`` or ``repro-pf lint src/``; exit code 0 means zero unsuppressed
findings.

This package is self-contained: standard-library ``ast``/``tomllib``
only, no runtime dependency on the rest of ``repro``.
"""

from repro.staticcheck.config import ReprolintConfig, load_config
from repro.staticcheck.model import Finding, Suppression
from repro.staticcheck.runner import AnalysisResult, analyze_paths, run_cli

__all__ = [
    "AnalysisResult",
    "Finding",
    "ReprolintConfig",
    "Suppression",
    "analyze_paths",
    "load_config",
    "run_cli",
]
