"""Findings and suppressions: the analyzer's two record types.

A :class:`Finding` is one diagnostic anchored to a file and line.  A
:class:`Suppression` is one reviewed ``# reprolint: allow[RULE]`` comment;
the runner matches findings against suppressions (same line, or the
``def`` line of the enclosing function) and reports any suppression that
matched nothing as a finding of its own (rule ``R000``), so waivers never
outlive the violation they were written for.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "Finding",
    "Suppression",
    "parse_suppressions",
    "USELESS_SUPPRESSION",
    "ANALYZER_VERSION",
]

#: The analyzer version, recorded in every JSON report and folded into
#: the incremental cache key (a new analyzer invalidates old results).
ANALYZER_VERSION = "4.0.0"

#: The meta-rule reported for a suppression comment that matched nothing.
USELESS_SUPPRESSION = "R000"

#: Matches a comment of the form ``reprolint: allow[R001]`` (one or
#: more codes, comma-separated); text after the bracket is the human
#: justification and is ignored by the parser.
_ALLOW_RE = re.compile(r"#\s*reprolint:\s*allow\[([A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True, slots=True)
class Finding:
    """One diagnostic: ``rule`` is the checker code (``R001``..``R005``,
    or ``R000`` for a stale suppression), ``path``/``line`` anchor it,
    ``module`` is the dotted module name the loader resolved."""

    rule: str
    path: str
    line: int
    message: str
    module: str = ""
    #: Flow-aware rules attach the taint trail here: origin-to-sink,
    #: one human-readable hop per element.
    trace: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "module": self.module,
            "trace": list(self.trace),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Finding":
        return cls(
            rule=data["rule"],
            path=data["path"],
            line=data["line"],
            message=data["message"],
            module=data.get("module", ""),
            trace=tuple(data.get("trace", ())),
        )

    def render(self) -> str:
        base = f"{self.path}:{self.line}: {self.rule} {self.message}"
        if self.trace:
            return base + f" [flow: {' '.join(self.trace)}]"
        return base

    def sort_key(self) -> tuple[str, int, str]:
        return (self.path, self.line, self.rule)


@dataclass(slots=True)
class Suppression:
    """One ``allow[...]`` comment: the line it sits on, the code line it
    *anchors* to (a standalone comment line anchors to the next code
    line, so a block comment above a long statement or a ``def`` works;
    a trailing comment anchors to its own line), the rule codes it
    waives, and whether any finding actually used it."""

    line: int
    rules: frozenset[str]
    anchor: int = 0
    matched: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not self.anchor:
            self.anchor = self.line

    @property
    def used(self) -> bool:
        return bool(self.matched)

    def covers(self, rule: str) -> bool:
        return rule in self.rules


def parse_suppressions(source: str) -> list[Suppression]:
    """Every ``# reprolint: allow[...]`` *comment* in *source*, by line.

    Tokenized, not regex-over-lines, so an ``allow[...]`` example inside
    a docstring or string literal is not a suppression.  Unparsable
    source yields no suppressions (the runner reports the file itself).
    """
    suppressions: list[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return []
    lines = source.splitlines()
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _ALLOW_RE.search(token.string)
        if match is None:
            continue
        rules = frozenset(
            part.strip().upper()
            for part in match.group(1).split(",")
            if part.strip()
        )
        if rules:
            lineno = token.start[0]
            suppressions.append(
                Suppression(line=lineno, rules=rules, anchor=_anchor(lines, lineno))
            )
    return suppressions


def _anchor(lines: list[str], lineno: int) -> int:
    """The code line a suppression at *lineno* anchors to: its own line
    for a trailing comment, else the first following non-blank,
    non-comment line (a block comment above a statement covers that
    statement; above a ``def``, the whole function)."""
    stripped = lines[lineno - 1].strip()
    if not stripped.startswith("#"):
        return lineno
    for offset in range(lineno, len(lines)):
        following = lines[offset].strip()
        if following and not following.startswith("#"):
            return offset + 1
    return lineno
