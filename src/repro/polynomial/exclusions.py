"""Exclusion arguments for super-quadratic polynomials (Section 2, items
3-4, after Lew & Rosenberg [8]).

The paper's sketch: "the lead terms of any super-quadratic polynomial F
grow faster than the quadratic growth of the plane, hence must leave large
gaps in their ranges", and in particular *a super-quadratic polynomial
whose coefficients are all positive cannot be a PF*.

This module makes the counting argument executable for the
positive-coefficient case:

* :func:`range_count` -- ``|{(x, y) : P(x, y) <= n}|``, computed exactly by
  a row-by-row scan (each row is monotone in ``y`` when all coefficients
  are positive, so rows terminate early and the scan is
  ``O(sqrt-ish(n))`` rows deep);
* :func:`gap_witness` -- for positive-coefficient super-quadratic ``P``, an
  explicit integer ``<= n`` missed by ``P`` (exists for every large enough
  ``n``; we return the smallest);
* :func:`exclusion_certificate` -- packages the pigeonhole: if
  ``range_count(n) < n`` then at least ``n - range_count(n)`` integers in
  ``1..n`` are missed, so ``P`` is not onto -- a finite *proof* of
  non-PF-ness for this candidate and horizon.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, DomainError
from repro.polynomial.poly2d import Polynomial2D

__all__ = ["range_count", "gap_witness", "ExclusionCertificate", "exclusion_certificate"]


def _require_positive_poly(p: Polynomial2D) -> None:
    if not p.has_all_positive_coefficients():
        raise ConfigurationError(
            "this counting argument requires all-positive coefficients "
            "(rows are then monotone and the scan is complete)"
        )


def range_count(p: Polynomial2D, n: int) -> int:
    """Exact ``|{(x, y) in N x N : P(x, y) <= n}|`` for positive-coefficient
    *P* (values are then increasing in each variable, so the scan is
    provably complete).

    >>> cube = Polynomial2D({(3, 0): 1, (0, 3): 1, (1, 1): 1})  # x^3+y^3+xy
    >>> range_count(cube, 100)
    13
    """
    _require_positive_poly(p)
    if isinstance(n, bool) or not isinstance(n, int) or n <= 0:
        raise DomainError(f"n must be a positive int, got {n!r}")
    count = 0
    x = 1
    while True:
        if p(x, 1) > n:
            break  # increasing in x: no further row can contribute
        y = 1
        while p(x, y) <= n:
            value = p(x, y)
            if value.denominator == 1 and value.numerator >= 1:
                count += 1
            y += 1
        x += 1
    return count


def gap_witness(p: Polynomial2D, n: int) -> int | None:
    """The smallest integer in ``1..n`` not attained by *P* (positive-
    coefficient candidates only), or ``None`` if all are attained.

    >>> gap_witness(Polynomial2D({(3, 0): 1, (0, 3): 1, (1, 1): 1}), 20)
    1
    """
    _require_positive_poly(p)
    if isinstance(n, bool) or not isinstance(n, int) or n <= 0:
        raise DomainError(f"n must be a positive int, got {n!r}")
    attained: set[int] = set()
    x = 1
    while True:
        if p(x, 1) > n:
            break
        y = 1
        while p(x, y) <= n:
            value = p(x, y)
            if value.denominator == 1 and value.numerator >= 1:
                attained.add(value.numerator)
            y += 1
        x += 1
    for v in range(1, n + 1):
        if v not in attained:
            return v
    return None


@dataclass(frozen=True, slots=True)
class ExclusionCertificate:
    """A finite disproof: *P* misses ``missing_count`` integers in
    ``1..horizon``, the smallest being ``first_gap`` -- hence *P* is not a
    PF."""

    degree: int
    horizon: int
    range_size: int
    missing_count: int
    first_gap: int | None

    @property
    def excludes(self) -> bool:
        return self.missing_count > 0


def exclusion_certificate(p: Polynomial2D, horizon: int) -> ExclusionCertificate:
    """Run the paper's counting argument at a finite horizon.

    For a super-quadratic positive-coefficient *P*, ``range_count(n)`` grows
    like ``n**(2/d) * const`` (``d`` = degree), so for any horizon past the
    small-number noise the certificate excludes *P*.

    >>> cert = exclusion_certificate(
    ...     Polynomial2D({(3, 0): 1, (0, 3): 1, (1, 1): 1}), horizon=200)
    >>> cert.excludes, cert.range_size < cert.horizon
    (True, True)
    """
    _require_positive_poly(p)
    size = range_count(p, horizon)
    first = gap_witness(p, horizon)
    # Pigeonhole lower bound: at most `size` distinct values are attained
    # (collisions only shrink the attained set), so at least horizon - size
    # integers in 1..horizon are missed; a concrete witness bumps it to >= 1
    # even when size >= horizon.
    missing = max(horizon - size, 0)
    if first is not None:
        missing = max(missing, 1)
    return ExclusionCertificate(
        degree=p.degree,
        horizon=horizon,
        range_size=size,
        missing_count=missing,
        first_gap=first,
    )
