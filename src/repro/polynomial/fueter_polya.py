"""Empirical Fueter-Polya search (Section 2, item 1).

The Fueter-Polya theorem [4]: *there is no quadratic polynomial PF other
than the Cantor polynomial and its twin*.  The theorem's proof is analytic;
this module provides the finite, executable counterpart the paper's
discussion invites: an exhaustive search of a half-integer coefficient grid
that (a) finds Cantor and its twin and (b) certifies -- via the finite
violation witnesses of :mod:`repro.polynomial.bijectivity` -- that *no
other grid point survives*.

The search is staged for speed:

1. cheap value probes on a 3x3 corner (positivity, integrality,
   distinctness, smallness -- a PF's nine corner values are nine distinct
   integers, and their minimum is 1);
2. full window analysis only for the survivors.

With the default grid (numerators -4..4 over denominator 2 for every
coefficient, constant term solved from ``P(1,1) = 1``) the stage-1 space is
9**5 = 59049 candidates and the whole search runs in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import product
from typing import Iterator, Sequence

from repro.errors import ConfigurationError
from repro.polynomial.bijectivity import analyze_window
from repro.polynomial.poly2d import Polynomial2D

__all__ = ["SearchResult", "default_grid", "search_quadratic_pfs", "candidate_grid_size"]


@dataclass(frozen=True, slots=True)
class SearchResult:
    """Outcome of a grid search."""

    grid_points: int
    stage1_survivors: int
    pfs_found: tuple[Polynomial2D, ...]

    def found_exactly_cantor_pair(self) -> bool:
        """The Fueter-Polya prediction: survivors == {Cantor, twin}."""
        expected = {Polynomial2D.cantor(), Polynomial2D.cantor_twin()}
        return set(self.pfs_found) == expected


def default_grid(span: int = 4) -> list[Fraction]:
    """Half-integer grid ``{-span/2, ..., -1/2, 0, 1/2, ..., span/2}``.

    ``span = 4`` (the default) covers every Cantor coefficient.

    >>> [str(f) for f in default_grid(2)]
    ['-1', '-1/2', '0', '1/2', '1']
    """
    if isinstance(span, bool) or not isinstance(span, int) or span <= 0:
        raise ConfigurationError(f"span must be a positive int, got {span!r}")
    return [Fraction(k, 2) for k in range(-span, span + 1)]


def candidate_grid_size(grid: Sequence[Fraction]) -> int:
    """Number of stage-1 candidates for a given coefficient grid (five free
    coefficients; the constant term is solved from ``P(1,1) = 1``)."""
    return len(grid) ** 5


def _stage1_candidates(grid: Sequence[Fraction]) -> Iterator[Polynomial2D]:
    """Yield candidates passing the 3x3 corner probes.

    The constant coefficient is *solved* from ``P(1, 1) = 1`` -- every PF
    maps some point to 1, and for monotone-growing quadratics that point
    is (1, 1); candidates violating this die in the window analysis of
    stage 2 anyway, so solving costs no generality on the grid.
    """
    probes = [(x, y) for x in range(1, 4) for y in range(1, 4)]
    for a20, a11, a02, a10, a01 in product(grid, repeat=5):
        # Solve a00 from P(1,1) = 1:
        a00 = 1 - (a20 + a11 + a02 + a10 + a01)
        p = Polynomial2D.quadratic(a20, a11, a02, a10, a01, a00)
        if p.degree < 2:
            continue  # linear polynomials cannot be PFs (not injective on N x N)
        ok = True
        values = set()
        for x, y in probes:
            v = p(x, y)
            if v.denominator != 1 or v.numerator <= 0 or v.numerator > 100:
                ok = False
                break
            if v.numerator in values:
                ok = False
                break
            values.add(v.numerator)
        if ok:
            yield p


def search_quadratic_pfs(
    grid: Sequence[Fraction] | None = None,
    bound: int = 36,
) -> SearchResult:
    """Exhaustively test every quadratic on the coefficient grid.

    *bound* is the surjectivity horizon for stage 2: survivors must cover
    ``1..bound`` exactly once from a complete window scan.

    The grid must contain every Cantor coefficient for the pair to be
    found: ``default_grid(3)`` (which includes ``-3/2``) is the smallest
    default grid that does; ``default_grid(4)`` is the documented search
    (59049 candidates, a few seconds)::

        result = search_quadratic_pfs(default_grid(4), bound=21)
        assert result.found_exactly_cantor_pair()
    """
    if grid is None:
        grid = default_grid()
    stage1 = list(_stage1_candidates(grid))
    pfs = []
    for p in stage1:
        report = analyze_window(p, bound)
        if report.pf_consistent and report.complete and not report.gaps:
            pfs.append(p)
    return SearchResult(
        grid_points=candidate_grid_size(grid),
        stage1_survivors=len(stage1),
        pfs_found=tuple(pfs),
    )
