"""Bivariate polynomials with exact rational coefficients.

Section 2 asks which *polynomials* can be pairing functions.  The candidate
space has rational (typically half-integer) coefficients -- Cantor's
polynomial is

    ``D(x, y) = x**2/2 + xy + y**2/2 - 3x/2 - y/2 + 1``

so exact arithmetic uses :class:`fractions.Fraction` throughout.  The class
is intentionally small: evaluation (scalar-exact and numpy-float for
sweeps), arithmetic needed to build candidates, degree bookkeeping, and the
structural predicates (integer-valued on the lattice, positive
coefficients) that the Fueter-Polya search and the exclusion arguments key
on.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping

import numpy as np

from repro.errors import ConfigurationError, DomainError

__all__ = ["Polynomial2D"]

Coeff = int | Fraction


class Polynomial2D:
    """A polynomial ``sum a[i,j] * x**i * y**j`` with Fraction coefficients.

    >>> p = Polynomial2D.cantor()
    >>> p(1, 1), p(3, 2)
    (Fraction(1, 1), Fraction(8, 1))
    >>> p.degree
    2
    """

    def __init__(self, coefficients: Mapping[tuple[int, int], Coeff]) -> None:
        coeffs: dict[tuple[int, int], Fraction] = {}
        for (i, j), a in coefficients.items():
            if (
                isinstance(i, bool)
                or isinstance(j, bool)
                or not isinstance(i, int)
                or not isinstance(j, int)
                or i < 0
                or j < 0
            ):
                raise ConfigurationError(f"bad exponent pair {(i, j)!r}")
            frac = Fraction(a)
            if frac != 0:
                coeffs[(i, j)] = frac
        self._coeffs = coeffs

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def cantor(cls) -> "Polynomial2D":
        """The diagonal PF (2.1) expanded as a polynomial."""
        h = Fraction(1, 2)
        return cls(
            {
                (2, 0): h,
                (1, 1): 1,
                (0, 2): h,
                (1, 0): -3 * h,
                (0, 1): -h,
                (0, 0): 1,
            }
        )

    @classmethod
    def cantor_twin(cls) -> "Polynomial2D":
        """The twin of (2.1): exchange x and y."""
        return cls.cantor().swap()

    @classmethod
    def zero(cls) -> "Polynomial2D":
        return cls({})

    @classmethod
    def quadratic(
        cls,
        a20: Coeff,
        a11: Coeff,
        a02: Coeff,
        a10: Coeff,
        a01: Coeff,
        a00: Coeff,
    ) -> "Polynomial2D":
        """General quadratic -- the Fueter-Polya search space."""
        return cls(
            {
                (2, 0): a20,
                (1, 1): a11,
                (0, 2): a02,
                (1, 0): a10,
                (0, 1): a01,
                (0, 0): a00,
            }
        )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def coefficients(self) -> dict[tuple[int, int], Fraction]:
        return dict(self._coeffs)

    @property
    def degree(self) -> int:
        """Total degree (``-1`` for the zero polynomial, by convention)."""
        if not self._coeffs:
            return -1
        return max(i + j for i, j in self._coeffs)

    def coefficient(self, i: int, j: int) -> Fraction:
        return self._coeffs.get((i, j), Fraction(0))

    def leading_form(self) -> dict[tuple[int, int], Fraction]:
        """The coefficients of the total-degree-``d`` terms (the "lead
        terms" of the paper's gap argument)."""
        d = self.degree
        return {(i, j): a for (i, j), a in self._coeffs.items() if i + j == d}

    def has_all_positive_coefficients(self) -> bool:
        """Every (nonzero) coefficient positive -- the hypothesis of the
        paper's simple exclusion example."""
        return bool(self._coeffs) and all(a > 0 for a in self._coeffs.values())

    def is_super_quadratic(self) -> bool:
        return self.degree > 2

    def swap(self) -> "Polynomial2D":
        """Exchange the roles of x and y."""
        return Polynomial2D({(j, i): a for (i, j), a in self._coeffs.items()})

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def __call__(self, x: int, y: int) -> Fraction:
        """Exact evaluation at integer (or Fraction) arguments."""
        total = Fraction(0)
        for (i, j), a in self._coeffs.items():
            total += a * x**i * y**j
        return total

    def eval_int(self, x: int, y: int) -> int:
        """Evaluate and assert integrality (candidate PFs must be integer-
        valued on the lattice)."""
        value = self(x, y)
        if value.denominator != 1:
            raise DomainError(
                f"polynomial is not integer-valued at ({x}, {y}): {value}"
            )
        return value.numerator

    def is_integer_valued_on_window(self, limit: int) -> bool:
        """Integer-valued at every lattice point of the ``limit x limit``
        window.  (For degree <= 2 this window check with ``limit >= 3``
        implies integrality everywhere, since second differences are then
        constant.)"""
        if limit <= 0:
            raise DomainError(f"limit must be positive, got {limit}")
        return all(
            self(x, y).denominator == 1
            for x in range(1, limit + 1)
            for y in range(1, limit + 1)
        )

    # reprolint: allow[R001] documented float path: sweeps and plots only,
    # never used where bijectivity or round-trips are asserted
    def eval_array(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Float evaluation over numpy arrays (sweeps/plots; not exact)."""
        x = np.asarray(xs, dtype=np.float64)
        y = np.asarray(ys, dtype=np.float64)
        out = np.zeros(np.broadcast(x, y).shape, dtype=np.float64)
        for (i, j), a in self._coeffs.items():
            out = out + float(a) * x**i * y**j
        return out

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def __add__(self, other: "Polynomial2D") -> "Polynomial2D":
        if not isinstance(other, Polynomial2D):
            return NotImplemented
        coeffs = dict(self._coeffs)
        for key, a in other._coeffs.items():
            coeffs[key] = coeffs.get(key, Fraction(0)) + a
        return Polynomial2D(coeffs)

    def __sub__(self, other: "Polynomial2D") -> "Polynomial2D":
        if not isinstance(other, Polynomial2D):
            return NotImplemented
        coeffs = dict(self._coeffs)
        for key, a in other._coeffs.items():
            coeffs[key] = coeffs.get(key, Fraction(0)) - a
        return Polynomial2D(coeffs)

    def scale(self, factor: Coeff) -> "Polynomial2D":
        f = Fraction(factor)
        return Polynomial2D({k: a * f for k, a in self._coeffs.items()})

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial2D):
            return NotImplemented
        return self._coeffs == other._coeffs

    def __hash__(self) -> int:
        return hash(frozenset(self._coeffs.items()))

    def __repr__(self) -> str:
        if not self._coeffs:
            return "Polynomial2D(0)"
        terms = []
        for (i, j), a in sorted(self._coeffs.items(), key=lambda kv: (-(kv[0][0] + kv[0][1]), kv[0])):
            monomial = ""
            if i:
                monomial += f"x^{i}" if i > 1 else "x"
            if j:
                monomial += f"y^{j}" if j > 1 else "y"
            terms.append(f"{a}{'*' + monomial if monomial else ''}")
        return "Polynomial2D(" + " + ".join(terms) + ")"
