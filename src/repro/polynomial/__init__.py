"""Polynomial pairing functions and their impossibility theory (Section 2).

* :mod:`~repro.polynomial.poly2d` -- exact bivariate polynomials;
* :mod:`~repro.polynomial.bijectivity` -- finite (non-)bijectivity
  certificates and the [7] density measure;
* :mod:`~repro.polynomial.fueter_polya` -- the executable Fueter-Polya
  grid search (Cantor + twin are the only quadratic survivors);
* :mod:`~repro.polynomial.exclusions` -- the [8]-style counting exclusion
  of positive-coefficient super-quadratic candidates.
"""

from __future__ import annotations

from repro.polynomial.poly2d import Polynomial2D
from repro.polynomial.bijectivity import (
    WindowReport,
    analyze_window,
    image_density,
    is_pf_on_window,
)
from repro.polynomial.fueter_polya import (
    SearchResult,
    candidate_grid_size,
    default_grid,
    search_quadratic_pfs,
)
from repro.polynomial.cubic_search import (
    CubicSearchResult,
    cubic_candidates,
    search_cubic_pfs,
)
from repro.polynomial.exclusions import (
    ExclusionCertificate,
    exclusion_certificate,
    gap_witness,
    range_count,
)

__all__ = [
    "Polynomial2D",
    "WindowReport",
    "analyze_window",
    "image_density",
    "is_pf_on_window",
    "SearchResult",
    "candidate_grid_size",
    "default_grid",
    "search_quadratic_pfs",
    "CubicSearchResult",
    "cubic_candidates",
    "search_cubic_pfs",
    "ExclusionCertificate",
    "exclusion_certificate",
    "gap_witness",
    "range_count",
]
