"""Finite certificates of (non-)bijectivity for candidate polynomial PFs.

A polynomial PF claim is infinite, but violations are finite and
searchable.  For a candidate ``P`` this module computes, over the region
``R(bound) = {(x, y) : P(x, y) <= bound}`` intersected with a safety
window:

* **positivity / integrality failures** -- immediate disqualifiers;
* **collisions** -- two lattice points with equal value (injectivity
  violation);
* **gaps** -- integers in ``1..bound`` hit by no lattice point
  (surjectivity violation), valid whenever the region scan was *complete*,
  i.e. the window provably contains every preimage of ``1..bound``;
* **density** -- ``|{(x,y) : P(x,y) <= n}| / n``, the quantity in the
  Lew-Rosenberg "unit density" refinement [7]: a PF has density exactly 1.

Completeness of the scan is certified monotonically: if ``P`` is
nondecreasing in each variable beyond the window's first row/column (true
for all our candidates, checked numerically on the boundary), no point
outside the window can map into ``1..bound``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.errors import DomainError
from repro.polynomial.poly2d import Polynomial2D

__all__ = ["WindowReport", "analyze_window", "image_density", "is_pf_on_window"]


@dataclass(frozen=True, slots=True)
class WindowReport:
    """Everything the window scan learned about a candidate."""

    bound: int
    window: int
    scanned_points: int
    non_positive: int
    non_integer: int
    collisions: tuple[tuple[int, tuple[int, int], tuple[int, int]], ...]
    gaps: tuple[int, ...]
    complete: bool

    @property
    def pf_consistent(self) -> bool:
        """No violation found: consistent with being a PF on this window
        (a certificate of *failure* is definitive; success is evidence)."""
        if self.non_positive or self.non_integer or self.collisions:
            return False
        return not (self.complete and self.gaps)


def _boundary_dominates(p: Polynomial2D, window: int, bound: int) -> bool:
    """True when every lattice point on the window's outer boundary maps
    above *bound* AND the polynomial is nondecreasing walking outward along
    the two boundary rays we extend past the window.  Together these make
    the scan complete for monotone-beyond-window candidates."""
    edge = window + 1
    for t in range(1, edge + 1):
        if p(edge, t) <= bound or p(t, edge) <= bound:
            return False
    # Light monotonicity probe beyond the boundary (not a proof for wild
    # polynomials, but we only certify completeness when it also holds).
    for t in range(1, edge + 1):
        if p(edge + 1, t) < p(edge, t) or p(t, edge + 1) < p(t, edge):
            return False
    return True


def analyze_window(p: Polynomial2D, bound: int, window: int | None = None) -> WindowReport:
    """Scan the candidate over a window and report violations.

    >>> report = analyze_window(Polynomial2D.cantor(), bound=50)
    >>> report.pf_consistent, report.complete, report.gaps
    (True, True, ())
    """
    if isinstance(bound, bool) or not isinstance(bound, int) or bound <= 0:
        raise DomainError(f"bound must be a positive int, got {bound!r}")
    if window is None:
        window = bound + 1  # any preimage of v <= bound has x, y <= v <= bound
    if window <= 0:
        raise DomainError(f"window must be positive, got {window}")

    seen: dict[int, tuple[int, int]] = {}
    collisions: list[tuple[int, tuple[int, int], tuple[int, int]]] = []
    non_positive = 0
    non_integer = 0
    scanned = 0
    for x in range(1, window + 1):
        for y in range(1, window + 1):
            value = p(x, y)
            scanned += 1
            if value.denominator != 1:
                non_integer += 1
                continue
            v = value.numerator
            if v <= 0:
                non_positive += 1
                continue
            if v <= bound:
                if v in seen:
                    collisions.append((v, seen[v], (x, y)))
                else:
                    seen[v] = (x, y)
    complete = _boundary_dominates(p, window, bound)
    gaps = tuple(v for v in range(1, bound + 1) if v not in seen)
    return WindowReport(
        bound=bound,
        window=window,
        scanned_points=scanned,
        non_positive=non_positive,
        non_integer=non_integer,
        collisions=tuple(collisions),
        gaps=gaps,
        complete=complete,
    )


def image_density(p: Polynomial2D, n: int, window: int | None = None) -> Fraction:
    """``|{(x, y) in window : 0 < P(x, y) <= n, integer}| / n`` -- the [7]
    density.  A PF has density exactly 1 for every n; a super-quadratic
    polynomial's density tends to 0.

    >>> image_density(Polynomial2D.cantor(), 36)
    Fraction(1, 1)
    """
    if isinstance(n, bool) or not isinstance(n, int) or n <= 0:
        raise DomainError(f"n must be a positive int, got {n!r}")
    if window is None:
        window = n + 1
    count = 0
    for x in range(1, window + 1):
        for y in range(1, window + 1):
            value = p(x, y)
            if value.denominator == 1 and 0 < value.numerator <= n:
                count += 1
    return Fraction(count, n)


def is_pf_on_window(p: Polynomial2D, bound: int) -> bool:
    """Convenience predicate: the candidate behaves like a PF for all
    values up to *bound* (complete scan, no violations).

    >>> is_pf_on_window(Polynomial2D.cantor(), 40)
    True
    >>> is_pf_on_window(Polynomial2D.quadratic(1, 0, 1, 0, 0, -1), 40)
    False
    """
    report = analyze_window(p, bound)
    return report.pf_consistent and report.complete and not report.gaps
