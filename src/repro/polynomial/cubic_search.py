"""Empirical verification of Section 2, item 3: *no cubic polynomial is a
pairing function* (Lew-Rosenberg [8]).

The theorem covers all cubics; a finite reproduction tests a documented
coefficient grid.  For each cubic candidate (a genuine degree-3 polynomial
on the grid) we establish a *violation witness*:

* a lattice point with a non-integer or non-positive value,
* a collision (two points, equal value) or a **pigeonhole surplus** --
  more than ``n`` window points with values in ``1..n`` implies a
  collision even without a complete scan, or
* a certified gap (an integer in ``1..n`` missed, under a scan whose
  completeness is certified by boundary dominance + outward monotonicity).

Exactness without Fractions: grid coefficients are *half-integers*, so
``2 * P`` has integer coefficients; the whole search runs on exact Python
ints (integrality of ``P`` is the parity of ``2P``).  This keeps the
250k-candidate default sweep in seconds instead of minutes.

The search is staged: cheap corner probes at (1,2), (2,1), (2,2), ...
eliminate almost everything; survivors get the full window analysis.
Expected (and asserted) outcome: **zero** cubics on the grid are
PF-consistent, echoing [8].
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import product
from typing import Iterator, Sequence

from repro.errors import ConfigurationError
from repro.polynomial.poly2d import Polynomial2D

__all__ = ["CubicSearchResult", "cubic_candidates", "search_cubic_pfs"]

# Exponent layout of the ten cubic coefficients (doubled-integer form).
_EXPONENTS = [
    (3, 0), (2, 1), (1, 2), (0, 3),
    (2, 0), (1, 1), (0, 2),
    (1, 0), (0, 1),
    (0, 0),
]

# Probe points beyond (1,1), cheap-to-expensive.
_PROBES = [(1, 2), (2, 1), (2, 2), (1, 3), (3, 1), (2, 3), (3, 2), (3, 3)]


@dataclass(frozen=True, slots=True)
class CubicSearchResult:
    """Outcome of a cubic grid sweep."""

    candidates: int
    stage1_survivors: int
    pf_consistent: tuple[Polynomial2D, ...]

    @property
    def confirms_theorem(self) -> bool:
        """True when no candidate survived -- the finite echo of [8]."""
        return not self.pf_consistent


def _doubled(coeffs: Sequence[Fraction]) -> list[int] | None:
    """The coefficients of ``2 * P`` as ints, or None if any ``2 * a`` is
    not an integer (grid misuse)."""
    out = []
    for a in coeffs:
        two_a = 2 * a
        if two_a.denominator != 1:
            return None
        out.append(two_a.numerator)
    return out


def _eval2(d: Sequence[int], x: int, y: int) -> int:
    """``2 * P(x, y)`` exactly, given doubled coefficients."""
    x2, y2 = x * x, y * y
    return (
        d[0] * x2 * x
        + d[1] * x2 * y
        + d[2] * x * y2
        + d[3] * y2 * y
        + d[4] * x2
        + d[5] * x * y
        + d[6] * y2
        + d[7] * x
        + d[8] * y
        + d[9]
    )


def cubic_candidates(
    lead_grid: Sequence[Fraction],
    lower_grid: Sequence[Fraction],
) -> Iterator[Polynomial2D]:
    """All genuine cubics on the grid (public, Fraction-typed view): lead
    coefficients (x^3, x^2y, xy^2, y^3) from *lead_grid* with at least one
    nonzero; quadratic and linear coefficients from *lower_grid*; constant
    solved from ``P(1, 1) = 1``."""
    if not lead_grid or not lower_grid:
        raise ConfigurationError("grids must be non-empty")
    for a30, a21, a12, a03 in product(lead_grid, repeat=4):
        if a30 == a21 == a12 == a03 == 0:
            continue
        for a20, a11, a02, a10, a01 in product(lower_grid, repeat=5):
            a00 = 1 - (a30 + a21 + a12 + a03 + a20 + a11 + a02 + a10 + a01)
            yield Polynomial2D(
                dict(zip(_EXPONENTS, (a30, a21, a12, a03, a20, a11, a02, a10, a01, a00)))
            )


def _window_violation(d: Sequence[int], bound: int) -> str | None:
    """Return a violation description for the doubled-coefficient cubic,
    or None if it is PF-consistent on the window (no witness found)."""
    window = bound + 1
    seen: set[int] = set()
    hits = 0
    for x in range(1, window + 1):
        for y in range(1, window + 1):
            v2 = _eval2(d, x, y)
            if v2 & 1:
                return f"non-integer value at ({x},{y})"
            v = v2 >> 1
            if v <= 0:
                return f"non-positive value {v} at ({x},{y})"
            if v <= bound:
                if v in seen:
                    return f"collision at value {v}"
                seen.add(v)
                hits += 1
                if hits > bound:  # pragma: no cover - caught as collision
                    return "pigeonhole surplus"
    # Completeness: boundary dominates the bound and grows outward.
    edge = window + 1
    complete = True
    for t in range(1, edge + 1):
        if _eval2(d, edge, t) <= 2 * bound or _eval2(d, t, edge) <= 2 * bound:
            complete = False
            break
        if (
            _eval2(d, edge + 1, t) < _eval2(d, edge, t)
            or _eval2(d, t, edge + 1) < _eval2(d, t, edge)
        ):
            complete = False
            break
    if complete and len(seen) < bound:
        missing = next(v for v in range(1, bound + 1) if v not in seen)
        return f"gap at value {missing}"
    return None


def search_cubic_pfs(
    lead_grid: Sequence[Fraction] | None = None,
    lower_grid: Sequence[Fraction] | None = None,
    bound: int = 24,
) -> CubicSearchResult:
    """Sweep the cubic grid; returns counts and any PF-consistent survivors
    (expected: none).

    Default grid: integer-and-half leads ``{-1, 0, 1}`` (>= one nonzero)
    and half-integer lower coefficients ``{-1, -1/2, 0, 1/2, 1}`` --
    80 * 3125 = 250,000 candidates, swept in seconds thanks to the
    doubled-integer representation.
    """
    if lead_grid is None:
        lead_grid = [Fraction(-1), Fraction(0), Fraction(1)]
    if lower_grid is None:
        lower_grid = [Fraction(k, 2) for k in range(-2, 3)]

    # Pre-double the grids once.
    lead2 = [2 * Fraction(a) for a in lead_grid]
    lower2 = [2 * Fraction(a) for a in lower_grid]
    if any(v.denominator != 1 for v in lead2 + lower2):
        raise ConfigurationError("grid coefficients must be half-integers")
    lead2i = [v.numerator for v in lead2]
    lower2i = [v.numerator for v in lower2]

    candidates = 0
    survivors: list[tuple[int, ...]] = []
    two = 2  # doubled representation of P(1,1) = 1
    for a30, a21, a12, a03 in product(lead2i, repeat=4):
        if a30 == a21 == a12 == a03 == 0:
            continue
        head_sum = a30 + a21 + a12 + a03
        for a20, a11, a02, a10, a01 in product(lower2i, repeat=5):
            a00 = two - (head_sum + a20 + a11 + a02 + a10 + a01)
            d = (a30, a21, a12, a03, a20, a11, a02, a10, a01, a00)
            candidates += 1
            values = {1}
            ok = True
            for x, y in _PROBES:
                v2 = _eval2(d, x, y)
                if v2 & 1:
                    ok = False
                    break
                v = v2 >> 1
                if v <= 0 or v > 200 or v in values:
                    ok = False
                    break
                values.add(v)
            if ok:
                survivors.append(d)

    consistent: list[Polynomial2D] = []
    for d in survivors:
        if _window_violation(d, bound) is None:
            half = Fraction(1, 2)
            consistent.append(
                Polynomial2D(
                    {e: c * half for e, c in zip(_EXPONENTS, d)}
                )
            )
    return CubicSearchResult(
        candidates=candidates,
        stage1_survivors=len(survivors),
        pf_consistent=tuple(consistent),
    )
