#!/usr/bin/env python
"""Extendible arrays/tables (Section 3): a relational table that grows and
shrinks, stored through pairing functions with ZERO data movement.

Scenario: an analytics table starts as 4 records x 3 attributes, then
lives through a realistic schema/load evolution:

* a burst of new records (rows),
* two new attribute columns,
* dropping a deprecated attribute,
* another load burst.

We replay the identical history against:

* the naive row-major layout every compiler uses (remaps on column
  changes -- the paper's Omega(n^2) complaint),
* PF-backed arrays (diagonal / square-shell / hyperbolic),
* and report moves, address spread, and utilization side by side.

Run:  python examples/extendible_table.py
"""

from __future__ import annotations

from repro.arrays import (
    ExtendibleArray,
    NaiveRowMajorArray,
    ReshapeKind,
    ReshapeOp,
    apply_workload,
    run_comparison,
)
from repro.core import DiagonalPairing, HyperbolicPairing, SquareShellPairing


def table_evolution() -> list[ReshapeOp]:
    """The table's life story as a reshape script."""
    return [
        ReshapeOp(ReshapeKind.APPEND_ROW, 60),   # load burst 1
        ReshapeOp(ReshapeKind.APPEND_COL, 2),    # two new attributes
        ReshapeOp(ReshapeKind.DELETE_COL, 1),    # drop deprecated attribute
        ReshapeOp(ReshapeKind.APPEND_ROW, 40),   # load burst 2
    ]


def main() -> None:
    print("A 4x3 table undergoes: +60 rows, +2 cols, -1 col, +40 rows")
    print()

    # --- Show value + address stability on the PF side -------------------
    table = ExtendibleArray(SquareShellPairing(), 4, 3, fill=None)
    table[1, 1] = "rec-1:id"
    table[4, 3] = "rec-4:attr3"
    addr_before = table.address_of(4, 3)
    apply_workload(table, table_evolution())
    print("PF-backed table after evolution:")
    print(f"  shape                {table.shape}")
    print(f"  cell (4,3) value     {table[4, 3]!r} (survived everything)")
    print(f"  cell (4,3) address   {table.address_of(4, 3)} "
          f"(was {addr_before}: never moved)")
    print(f"  element moves        {table.space.traffic.moves}")
    print()

    # --- Show what the naive layout pays ---------------------------------
    naive = NaiveRowMajorArray(4, 3, fill=0)
    apply_workload(naive, table_evolution())
    print("Naive row-major table after the same evolution:")
    print(f"  element moves        {naive.space.traffic.moves} "
          "(every column change remaps the world)")
    print()

    # --- Full comparison harness ------------------------------------------
    print("Side-by-side (fresh 1x1 arrays, same history incl. 100 reshapes):")
    results = run_comparison(
        [DiagonalPairing(), SquareShellPairing(), HyperbolicPairing()],
        table_evolution(),
    )
    header = f"{'implementation':>18} {'moves':>8} {'high-water':>11} {'util':>7}"
    print(header)
    print("-" * len(header))
    for r in results:
        print(
            f"{r.implementation:>18} {r.moves:>8} {r.high_water_mark:>11} "
            f"{r.utilization:>7.3f}"
        )
    print()
    print("Reading the table:")
    print("  * naive: perfectly compact but pays Theta(size) moves per column op;")
    print("  * square-shell: zero moves, compact while the table stays squarish;")
    print("  * hyperbolic: zero moves, best worst-case spread over ALL shapes")
    print("    (Theta(n log n), Section 3.2.3) — the choice when, like a")
    print("    relational database, you cannot predict your tables' shapes.")


if __name__ == "__main__":
    main()
