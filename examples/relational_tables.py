#!/usr/bin/env python
"""A miniature relational layer over PF-stored extendible tables.

Section 3.2.3's motivation verbatim: shape-based compactness guarantees
"do not help much with applications such as relational databases, wherein
one cannot limit a priori the potential shapes of one's tables" -- which is
exactly why the hyperbolic PF (worst-case-optimal over ALL shapes) exists.

This example builds a tiny relation abstraction -- named columns, insert,
scan, ALTER TABLE ADD/DROP COLUMN -- on top of
:class:`repro.arrays.extendible.ExtendibleArray`, and shows:

* schema changes move **zero** stored values (the PF guarantee);
* two tables with wildly different shapes (a wide fact table and a tall
  skinny log) both stay within the hyperbolic PF's Theta(n log n) spread,
  while a shape-tuned PF pays quadratically on the shape it wasn't tuned
  for.

Run:  python examples/relational_tables.py
"""

from __future__ import annotations

from repro.arrays import ExtendibleArray
from repro.core import AspectRatioPairing, HyperbolicPairing


class MiniRelation:
    """Named-column veneer over an extendible array (rows = records)."""

    def __init__(self, name: str, columns: list[str], mapping=None) -> None:
        if not columns:
            raise ValueError("need at least one column")
        self.name = name
        self.columns = list(columns)
        mapping = mapping if mapping is not None else HyperbolicPairing()
        self._array = ExtendibleArray(mapping, rows=1, cols=len(columns))
        self._count = 0  # live records (row 1 reserved as scratch header)

    # -- DML ------------------------------------------------------------

    def insert(self, record: dict) -> int:
        unknown = set(record) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns: {sorted(unknown)}")
        self._count += 1
        while self._array.rows < self._count + 1:
            self._array.append_row()
        row = self._count + 1  # header row offset
        for j, column in enumerate(self.columns, start=1):
            if column in record:
                self._array[row, j] = record[column]
        return self._count

    def scan(self):
        for i in range(1, self._count + 1):
            row = i + 1
            yield {
                column: self._array[row, j]
                for j, column in enumerate(self.columns, start=1)
                if self._array[row, j] is not None
            }

    # -- DDL ------------------------------------------------------------

    def add_column(self, column: str) -> None:
        if column in self.columns:
            raise KeyError(f"duplicate column {column!r}")
        self.columns.append(column)
        self._array.append_col()

    def drop_last_column(self) -> str:
        if len(self.columns) <= 1:
            raise ValueError("cannot drop the last column")
        dropped = self.columns.pop()
        self._array.delete_col()
        return dropped

    # -- introspection ----------------------------------------------------

    @property
    def moves(self) -> int:
        return self._array.space.traffic.moves

    @property
    def spread(self) -> int:
        return self._array.space.high_water_mark


def main() -> None:
    print("--- A users table that survives schema evolution ---------------")
    users = MiniRelation("users", ["id", "name"])
    users.insert({"id": 1, "name": "ada"})
    users.insert({"id": 2, "name": "alan"})
    users.add_column("email")                      # ALTER TABLE ADD COLUMN
    users.insert({"id": 3, "name": "kurt", "email": "k@x"})
    users.add_column("legacy_flag")
    users.drop_last_column()                       # ... and DROP COLUMN
    print(f"  schema now: {users.columns}")
    for record in users.scan():
        print(f"  {record}")
    print(f"  element moves across all DDL: {users.moves} (always 0)")

    print("\n--- Shape-agnostic compactness (why H, Section 3.2.3) ---------")
    # A tall skinny event log vs a wide fact table, same cell count.
    configs = [
        ("hyperbolic", HyperbolicPairing),
        ("aspect-1x8 (tuned wide)", lambda: AspectRatioPairing(1, 8)),
    ]
    for label, make in configs:
        log = MiniRelation("log", ["ts"], mapping=make())
        for i in range(400):
            log.insert({"ts": i})
        wide = MiniRelation("fact", [f"c{i}" for i in range(16)], mapping=make())
        for i in range(25):
            wide.insert({f"c{j}": i * j for j in range(16)})
        print(
            f"  {label:>24}: tall log spread={log.spread:>7}  "
            f"wide fact spread={wide.spread:>7}"
        )
    print()
    print("  The shape-tuned mapping is compact on its favored shape and")
    print("  pays heavily on the other; the hyperbolic PF stays O(n log n)")
    print("  on BOTH — the relational-database argument of Section 3.2.3.")


if __name__ == "__main__":
    main()
