#!/usr/bin/env python
"""Designing pairing functions (Sections 2-3): the constructor toolkits
and the impossibility theory, hands on.

1. Build PFs from shell partitions (Procedure PF-Constructor) and compare
   their compactness — including a dovetail tuned for two aspect ratios.
2. Build APFs from copy indices (Procedure APF-Constructor) and watch the
   stride-growth tradeoff.
3. Ask the Section 2 question empirically: which *polynomials* are PFs?
   (Fueter–Pólya search + the super-quadratic exclusion argument.)

Run:  python examples/design_a_pairing_function.py
"""

from __future__ import annotations

from repro.apf.constructor import ConstructedAPF, CopyIndex
from repro.core import (
    AspectRatioPairing,
    DovetailMapping,
    ShellConstructedPairing,
    ShellOrder,
)
from repro.core.shells import HyperbolicShells, SquareShells
from repro.polynomial import (
    Polynomial2D,
    exclusion_certificate,
    image_density,
    is_pf_on_window,
    search_quadratic_pfs,
)
from repro.polynomial.fueter_polya import default_grid
from repro.render import render_pf_table


def shell_construction() -> None:
    print("--- 1. PF-Constructor: pick shells, pick an order, get a PF ---")
    for partition, order in (
        (SquareShells(), ShellOrder.BY_ROWS),
        (HyperbolicShells(), ShellOrder.BY_COLUMNS_X_INCREASING),
    ):
        pf = ShellConstructedPairing(partition, order)
        pf.check_roundtrip_window(10, 10)  # Theorem 3.1 guarantees this
        print()
        print(render_pf_table(pf, 5, 5))

    print()
    print("A dovetail tuned for BOTH 1:2 and 2:1 tables (Section 3.2.2):")
    dt = DovetailMapping([AspectRatioPairing(1, 2), AspectRatioPairing(2, 1)])
    for rows, cols in ((4, 8), (8, 4)):
        cells = rows * cols
        spread = dt.spread_for_shape(rows, cols)
        print(f"  {rows}x{cols} table ({cells} cells): max address {spread} "
              f"(<= m*n + m-1 = {2 * cells + 1})")
    solo = AspectRatioPairing(1, 2)
    print(f"  (single A_1,2 on the 8x4 table would reach "
          f"{solo.spread_for_shape(8, 4)})")


def apf_construction() -> None:
    print("\n--- 2. APF-Constructor: pick kappa(g), get an APF -------------")

    class FibonacciCopyIndex(CopyIndex):
        """A custom copy index no one asked for -- still a valid APF."""

        @property
        def name(self) -> str:
            return "kappa=fib(g)"

        def kappa(self, g: int) -> int:
            a, b = 0, 1
            for _ in range(g):
                a, b = b, a + b
            return a

    custom = ConstructedAPF(FibonacciCopyIndex())
    custom.check_roundtrip_window(12, 12)  # Theorem 4.2 guarantees this
    print("  kappa(g) = fib(g) is a valid APF (Theorem 4.2); strides:")
    print("   x:      ", list(range(1, 13)))
    print("   stride: ", [custom.stride(x) for x in range(1, 13)])
    print("   base:   ", [custom.base(x) for x in range(1, 13)])
    print("  (B_x < S_x everywhere -- relation (4.2).)")


def polynomial_theory() -> None:
    print("\n--- 3. Which polynomials are PFs? (Section 2) -----------------")
    cantor = Polynomial2D.cantor()
    print(f"  Cantor polynomial: {cantor}")
    print(f"  is a PF on a verified window: {is_pf_on_window(cantor, 45)}")
    print(f"  image density (must be 1 for a PF): {image_density(cantor, 36)}")

    print("\n  Exhaustive grid search over quadratics (Fueter-Polya):")
    result = search_quadratic_pfs(default_grid(3), bound=21)
    print(f"    candidates: {result.grid_points}, stage-1 survivors: "
          f"{result.stage1_survivors}")
    print(f"    PFs found: {len(result.pfs_found)} -> exactly Cantor + twin: "
          f"{result.found_exactly_cantor_pair()}")

    print("\n  Super-quadratic positive-coefficient candidates cannot be PFs:")
    for poly in (
        Polynomial2D({(3, 0): 1, (0, 3): 1, (1, 1): 1}),
        Polynomial2D({(2, 1): 2, (1, 2): 1, (0, 0): 1}),
    ):
        cert = exclusion_certificate(poly, horizon=300)
        print(f"    {poly}")
        print(f"      range hits only {cert.range_size} of 1..{cert.horizon}; "
              f"first missed integer: {cert.first_gap} -> excluded")


if __name__ == "__main__":
    shell_construction()
    apf_construction()
    polynomial_theory()
