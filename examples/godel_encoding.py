#!/usr/bin/env python
"""Godel-style encodings (Section 1.2): slipping between worlds of
strings, integers, and tuples of integers.

"It took revolutionary thinkers such as Godel and Turing to recognize that
the correspondences embodied by PFs can be viewed as encodings ... of
ordered pairs (and, thence, of arbitrary finite tuples or strings) as
integers."

This example encodes progressively richer objects as single positive
integers, each step bijective:

1. pairs                  (any 2-D PF);
2. fixed-arity tuples     (iterated pairing);
3. arbitrary-length tuples (length-tagged: a bijection between ALL finite
   tuples and N -- every integer decodes to exactly one tuple);
4. strings                (bijective base-k numeration);
5. nested trees and sequences-of-strings (composition).

Run:  python examples/godel_encoding.py
"""

from __future__ import annotations

from repro import DiagonalPairing, IteratedPairing, StringCodec, TupleCodec


def main() -> None:
    print("--- 1. Pairs: the original Godel/Turing trick ---------------")
    d = DiagonalPairing()
    code = d.pair(12, 34)
    print(f"  (12, 34)  <->  {code}  <->  {d.unpair(code)}")

    print("\n--- 2. Fixed-arity tuples by iteration -----------------------")
    p4 = IteratedPairing(4, d)
    code = p4.pair((3, 1, 4, 1))
    print(f"  (3, 1, 4, 1)  <->  {code}  <->  {p4.unpair(code)}")

    print("\n--- 3. ALL finite tuples, bijectively -------------------------")
    tuples = TupleCodec()
    for t in [(), (7,), (2, 7), (1, 8, 2, 8)]:
        print(f"  {str(t):>14}  <->  {tuples.encode(t)}")
    print("  ... and every integer IS some tuple:")
    for z in range(1, 9):
        print(f"    {z}  <->  {tuples.decode(z)}")

    print("\n--- 4. Strings ------------------------------------------------")
    strings = StringCodec()  # a-z
    for s in ["", "hi", "godel"]:
        code = strings.encode(s)
        print(f"  {s!r:>9}  <->  {code}  <->  {strings.decode(code)!r}")
    print("  decoding a few consecutive integers enumerates all strings:")
    print("   ", [strings.decode(z) for z in range(1, 8)])

    print("\n--- 5. Composition: a sentence as one integer -----------------")
    words = ["pairing", "functions", "encode", "everything"]
    sentence_code = strings.encode_sequence(words)
    print(f"  {words}")
    print(f"  <->  {sentence_code}")
    print(f"  <->  {list(strings.decode_sequence(sentence_code))}")

    print("\n--- Bonus: nested trees ---------------------------------------")
    tree = (1, (2, 3), ((4,), 5))
    code = tuples.encode_nested(tree)
    print(f"  {tree}  <->  {code}  <->  {tuples.decode_nested(code)}")


if __name__ == "__main__":
    main()
