#!/usr/bin/env python
"""Quickstart: the pairing-function zoo in five minutes.

Covers the public API end to end:

1. pair/unpair with the closed-form PFs (and the paper's figures);
2. designing a brand-new PF with Procedure PF-Constructor;
3. additive PFs: bases, strides, and the Figure 6 samples;
4. compactness: spread functions and the Theta(n log n) optimum.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    DiagonalPairing,
    HyperbolicPairing,
    ShellConstructedPairing,
    ShellOrder,
    SquareShellPairing,
    TSharp,
    get_pairing,
)
from repro.core.shells import DiagonalShells
from repro.core.spread import spread_curve
from repro.render import figure2, figure6, render_pf_table


def section(title: str) -> None:
    print()
    print("#" * 66)
    print(f"# {title}")
    print("#" * 66)


def main() -> None:
    section("1. Pairing and unpairing")
    d = DiagonalPairing()
    print("The Cantor diagonal PF D(x, y) = C(x+y-1, 2) + y:")
    print(f"  D(3, 2) = {d.pair(3, 2)}")
    print(f"  D^-1(8) = {d.unpair(8)}")
    print()
    print(figure2())
    print()
    print("Every mapping is addressable by name through the registry:")
    for name in ("square-shell", "hyperbolic", "aspect-1x2", "apf-sharp"):
        pf = get_pairing(name)
        print(f"  {name:>14}: pair(4, 5) = {pf.pair(4, 5):>6}, "
              f"unpair(100) = {pf.unpair(100)}")

    section("2. Designing your own PF (Procedure PF-Constructor)")
    custom = ShellConstructedPairing(DiagonalShells(), ShellOrder.BY_COLUMNS_X_INCREASING)
    print("Diagonal shells walked the *other* way (Step 2b variant):")
    print(render_pf_table(custom, 4, 4))
    print()
    custom.check_roundtrip_window(16, 16)  # Theorem 3.1: always a bijection
    print("check_roundtrip_window(16, 16): valid PF (Theorem 3.1).")

    section("3. Additive PFs: every row is an arithmetic progression")
    sharp = TSharp()
    print("T# row contracts (computed once at registration):")
    for x in (1, 5, 28, 29):
        ap = sharp.progression(x)
        print(f"  row {x:>2}: base {ap.base:>4}, stride {ap.stride:>4}  "
              f"tasks: {list(ap.terms(4))}")
    print()
    print(figure6())

    section("4. Compactness: the spread function S(n)")
    print(f"{'n':>6} {'diagonal':>10} {'square':>10} {'hyperbolic':>11} {'bound':>8}")
    ns = [16, 64, 256, 1024]
    curves = {
        pf.name: spread_curve(pf, ns)
        for pf in (DiagonalPairing(), SquareShellPairing(), HyperbolicPairing())
    }
    for i, n in enumerate(ns):
        bound = curves["hyperbolic"].points[i].lower_bound
        print(
            f"{n:>6} {curves['diagonal'].points[i].spread:>10} "
            f"{curves['square-shell'].points[i].spread:>10} "
            f"{curves['hyperbolic'].points[i].spread:>11} {bound:>8}"
        )
    print()
    print("The hyperbolic PF meets the Theta(n log n) lower bound exactly —")
    print("no PF can beat it by more than a constant factor (Section 3.2.3).")


if __name__ == "__main__":
    main()
