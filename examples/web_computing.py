#!/usr/bin/env python
"""Accountable web computing (Section 4): a volunteer-computing project
whose task allocation is an additive pairing function.

Scenario: a SETI/folding-style project with 30 volunteers — most honest,
some careless, a few outright malicious.  The server:

* seats volunteers so faster machines get smaller row indices (the paper's
  front-end policy — smaller rows mean smaller strides under any compact
  APF, so the busiest volunteers use the densest task ranges);
* hands out tasks along each volunteer's arithmetic progression
  (base + stride cached at registration — one add per task afterwards);
* spot-checks a sample of returned results, attributes every bad result to
  its producer via the APF *inverse*, and bans repeat offenders;
* survives departures by recycling rows with epoch bookkeeping, so
  attribution stays exact across reassignment.

Then the same seeded project is re-run over four APF families to show the
compactness tradeoff of Section 4.2 (the task-index footprint).

Run:  python examples/web_computing.py
"""

from __future__ import annotations

from repro.apf.families import TBracket, TSharp, TStar
from repro.webcompute import (
    Behavior,
    SimulationConfig,
    VolunteerProfile,
    WBCServer,
    WBCSimulation,
    run_family_comparison,
)


def manual_walkthrough() -> None:
    print("--- Manual walkthrough: one server, three volunteers ---------")
    server = WBCServer(TSharp(), verification_rate=1.0, ban_after_strikes=2)
    fast, slow, evil = server.register_round(
        [
            VolunteerProfile("fast-honest", speed=5.0),
            VolunteerProfile("slow-honest", speed=0.5),
            VolunteerProfile(
                "fast-malicious",
                speed=4.0,
                behavior=Behavior.MALICIOUS,
                error_rate=1.0,
            ),
        ]
    )
    for vid, label in ((fast, "fast-honest"), (slow, "slow-honest"), (evil, "fast-malicious")):
        row = server.frontend.row_of(vid)
        contract = server.allocator.contract(row)
        print(f"  {label:>15}: row {row}, base {contract.base}, stride {contract.stride}")

    print("\n  The malicious volunteer returns garbage twice:")
    for round_no in (1, 2):
        task = server.request_task(evil)
        server.submit_result(evil, task.index, task.expected_result ^ 0xBAD)
        who = server.attribute(task.index)
        print(
            f"    task {task.index}: bad result; T^-1 attributes it to "
            f"volunteer {who} — strike {round_no}"
        )
    print(f"  banned after 2 strikes: {server.ledger.is_banned(evil)}")

    print("\n  Honest volunteers keep working:")
    task = server.request_task(fast)
    server.submit_result(fast, task.index, task.expected_result)
    print(f"    volunteer {fast} completed task {task.index} — verified OK")


def full_simulation() -> None:
    print("\n--- Seeded project: 400 ticks, churn, 35% faulty volunteers --")
    config = SimulationConfig(
        ticks=400,
        initial_volunteers=30,
        careless_fraction=0.15,
        malicious_fraction=0.20,
        verification_rate=0.3,
        ban_after_strikes=2,
        departure_rate=0.004,
        arrival_rate=0.1,
        seed=2002,
    )
    outcome = WBCSimulation(TSharp(), config).run()
    print(f"  tasks completed          {outcome.tasks_completed}")
    print(f"  bad results returned     {outcome.bad_results_returned}")
    print(f"  bad results caught       {outcome.bad_results_caught} "
          f"(verification sampled at {config.verification_rate:.0%})")
    print(f"  faulty volunteers banned {outcome.faulty_banned}")
    print(f"  honest volunteers banned {outcome.honest_banned} (always 0)")
    print(f"  departures handled       {outcome.departures}")
    print(f"  attribution checks       {outcome.attribution_checks}, "
          f"failures {outcome.attribution_failures} (always 0)")


def family_comparison() -> None:
    print("\n--- Same workload, four allocation functions (Section 4.2) ---")
    config = SimulationConfig(ticks=300, initial_volunteers=40, seed=2002)
    outcomes = run_family_comparison(
        [TBracket(1), TBracket(3), TSharp(), TStar()], config
    )
    print(f"  {'family':>15} {'tasks':>7} {'max task index':>18} {'density':>12}")
    for o in outcomes:
        print(
            f"  {o.apf_name:>15} {o.tasks_completed:>7} "
            f"{o.max_task_index:>18} {o.density:>12.3e}"
        )
    print()
    print("  Identical work — wildly different task-index footprints:")
    print("  T^<1>'s exponential strides spray tasks across astronomical")
    print("  indices; T# (quadratic) and T* (subquadratic) keep the task")
    print("  memory dense, which is the whole point of Section 4.2.")


def forensics_addendum() -> None:
    """Post-run audit: detection latency and pollution, from the ledger."""
    from repro.webcompute.metrics import compute_metrics

    print("\n--- Forensics: how fast were offenders caught? ----------------")
    config = SimulationConfig(
        ticks=300,
        initial_volunteers=20,
        malicious_fraction=0.25,
        careless_fraction=0.0,
        verification_rate=0.5,
        ban_after_strikes=2,
        seed=99,
        departure_rate=0.0,
        arrival_rate=0.0,
    )
    sim = WBCSimulation(TSharp(), config)
    sim.run()
    m = compute_metrics(sim.server)
    print(f"  offenders                {m.offenders}")
    print(f"  banned                   {m.offenders_banned} "
          f"(coverage {m.ban_coverage:.0%})")
    if m.mean_detection_latency is not None:
        print(f"  mean detection latency   {m.mean_detection_latency:.1f} ticks")
    print(f"  pollution (bad returns)  {m.total_pollution}")
    print(f"  exposure (tasks issued after first bad) {m.total_exposure}")


if __name__ == "__main__":
    manual_walkthrough()
    full_simulation()
    family_comparison()
    forensics_addendum()
