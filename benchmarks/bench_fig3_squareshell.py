"""Figure 3: the square-shell PF A_{1,1} sampled on an 8x8 window."""

from __future__ import annotations

import numpy as np

from conftest import print_report
from repro.core.squareshell import SquareShellPairing
from repro.render.figures import figure3, figure3_data

PAPER_FIG3 = [
    [1, 4, 9, 16, 25, 36, 49, 64],
    [2, 3, 8, 15, 24, 35, 48, 63],
    [5, 6, 7, 14, 23, 34, 47, 62],
    [10, 11, 12, 13, 22, 33, 46, 61],
    [17, 18, 19, 20, 21, 32, 45, 60],
    [26, 27, 28, 29, 30, 31, 44, 59],
    [37, 38, 39, 40, 41, 42, 43, 58],
    [50, 51, 52, 53, 54, 55, 56, 57],
]


def test_figure3_table(benchmark):
    data = benchmark(figure3_data)
    assert data == PAPER_FIG3
    print_report("Figure 3 (square-shell PF, 8x8)", figure3().splitlines())


def test_figure3_perfect_square_storage(benchmark):
    """The property the figure illustrates: every k x k array occupies
    exactly addresses 1..k**2."""
    a = SquareShellPairing()

    def check():
        for k in (8, 32, 64):
            addrs = sorted(
                a.pair(x, y) for x in range(1, k + 1) for y in range(1, k + 1)
            )
            assert addrs == list(range(1, k * k + 1))
        return True

    assert benchmark(check)


def test_figure3_vectorized_window(benchmark):
    a = SquareShellPairing()
    xs, ys = np.meshgrid(np.arange(1, 513), np.arange(1, 513), indexing="ij")
    grid = benchmark(lambda: a.pair_array(xs, ys))
    assert grid[0][:8].tolist() == PAPER_FIG3[0]
