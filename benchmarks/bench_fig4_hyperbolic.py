"""Figure 4: the hyperbolic PF H sampled on an 8x7 window."""

from __future__ import annotations

from conftest import print_report
from repro.core.hyperbolic import HyperbolicPairing
from repro.numbertheory.divisor_sums import divisor_summatory
from repro.render.figures import figure4, figure4_data

PAPER_FIG4 = [
    [1, 3, 5, 8, 10, 14, 16],
    [2, 7, 13, 19, 26, 34, 40],
    [4, 12, 22, 33, 44, 56, 69],
    [6, 18, 32, 48, 64, 81, 99],
    [9, 25, 43, 63, 86, 108, 130],
    [11, 31, 55, 80, 107, 136, 165],
    [15, 39, 68, 98, 129, 164, 200],
    [17, 47, 79, 116, 154, 193, 235],
]


def test_figure4_table(benchmark):
    data = benchmark(figure4_data)
    assert data == PAPER_FIG4
    print_report("Figure 4 (hyperbolic PF, 8x7)", figure4().splitlines())


def test_figure4_unpair_sweep(benchmark):
    """Inverse cost: unpair addresses across five decades (binary search
    over D plus a divisor scan)."""
    h = HyperbolicPairing()
    targets = [10, 10**2, 10**3, 10**4, 10**5]

    def invert_all():
        return [h.unpair(z) for z in targets]

    positions = benchmark(invert_all)
    for z, (x, y) in zip(targets, positions):
        assert h.pair(x, y) == z


def test_figure4_shell_boundaries(benchmark):
    """Shell c occupies addresses D(c-1)+1 .. D(c) -- the structural fact
    behind the figure, checked over 2000 shells."""

    def check():
        h = HyperbolicPairing()
        for c in range(1, 2001):
            first = h.pair(c, 1)  # (c, 1) leads shell c (largest divisor)
            assert first == divisor_summatory(c - 1) + 1
        return True

    assert benchmark(check)


def test_figure4_large_window_sieve_vs_scalar(benchmark):
    """The batch idiom: a 128x128 hyperbolic table via the divisor-list
    sieve (one O(P log P) pass) vs the per-cell scalar path -- same values,
    measured speedup asserted >= 2x."""
    import time

    from repro.core.base import StorageMapping

    h = HyperbolicPairing()

    table = benchmark(lambda: h.table(128, 128))
    assert table[7][6] == PAPER_FIG4[7][6]

    t0 = time.perf_counter()
    h.table(128, 128)
    sieve_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    scalar = StorageMapping.table(HyperbolicPairing(), 128, 128)
    scalar_s = time.perf_counter() - t0
    assert scalar == table
    assert sieve_s * 2 < scalar_s
