"""Figure 2: the diagonal PF D sampled on an 8x8 window.

Regenerates the exact table the paper prints (asserted cell-by-cell) and
times the regeneration plus a large-window variant that exercises both the
scalar and the vectorized paths.
"""

from __future__ import annotations

import numpy as np

from conftest import print_report
from repro.core.diagonal import DiagonalPairing
from repro.render.figures import figure2, figure2_data

PAPER_FIG2 = [
    [1, 3, 6, 10, 15, 21, 28, 36],
    [2, 5, 9, 14, 20, 27, 35, 44],
    [4, 8, 13, 19, 26, 34, 43, 53],
    [7, 12, 18, 25, 33, 42, 52, 63],
    [11, 17, 24, 32, 41, 51, 62, 74],
    [16, 23, 31, 40, 50, 61, 73, 86],
    [22, 30, 39, 49, 60, 72, 85, 99],
    [29, 38, 48, 59, 71, 84, 98, 113],
]


def test_figure2_table(benchmark):
    data = benchmark(figure2_data)
    assert data == PAPER_FIG2
    print_report("Figure 2 (diagonal PF, 8x8)", figure2().splitlines())


def test_figure2_large_window_scalar(benchmark):
    d = DiagonalPairing()

    def build():
        return d.table(128, 128)

    table = benchmark(build)
    assert table[0][:8] == PAPER_FIG2[0]
    assert table[127][127] == d.pair(128, 128)


def test_figure2_large_window_vectorized(benchmark):
    d = DiagonalPairing()
    xs, ys = np.meshgrid(np.arange(1, 513), np.arange(1, 513), indexing="ij")

    def build():
        return d.pair_array(xs, ys)

    grid = benchmark(build)
    assert grid[0][:8].tolist() == PAPER_FIG2[0]
    assert int(grid[511, 511]) == d.pair(512, 512)
