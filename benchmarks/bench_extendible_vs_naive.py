"""Section 3's motivating claim: naive remapping does Omega(n^2) work for
O(n) shape changes; a PF-mapped array does zero data movement.

The benchmark replays identical reshape workloads against both
implementations and reports (and asserts) the move counters, then times
each side.
"""

from __future__ import annotations

from conftest import print_report
from repro.arrays.extendible import ExtendibleArray
from repro.arrays.metrics import run_comparison
from repro.arrays.naive import NaiveRowMajorArray
from repro.arrays.workloads import apply_workload, column_growth, random_walk
from repro.core.hyperbolic import HyperbolicPairing
from repro.core.squareshell import SquareShellPairing


def tall_then_columns(n: int):
    """n rows, then n column appends: the pitch changes n times over an
    n-row array -- the Theta(n^2) worst case."""
    from repro.arrays.workloads import ReshapeKind, ReshapeOp

    return [ReshapeOp(ReshapeKind.APPEND_ROW, n - 1)] + column_growth(n)


def test_naive_quadratic_moves(benchmark):
    n = 48

    def run():
        arr = NaiveRowMajorArray(1, 1, fill=0)
        apply_workload(arr, tall_then_columns(n))
        return arr.space.traffic.moves

    moves = benchmark(run)
    # n column appends over an n-row array: >= (n-1) moves each after the
    # first few -- Omega(n^2) in total.
    assert moves > n * n
    print_report(
        "Naive remapping cost",
        [f"{n} rows + {n} column appends -> {moves} element moves (Omega(n^2))"],
    )


def test_pf_array_zero_moves(benchmark):
    n = 48

    def run():
        arr = ExtendibleArray(SquareShellPairing(), 1, 1, fill=0)
        apply_workload(arr, tall_then_columns(n))
        return arr.space.traffic.moves

    moves = benchmark(run)
    assert moves == 0


def test_mixed_workload_comparison(benchmark):
    """The full side-by-side table on a 600-step random walk."""
    workload = random_walk(600, seed=2002, max_side=80)

    def run():
        return run_comparison(
            [SquareShellPairing(), HyperbolicPairing()], workload
        )

    results = benchmark(run)
    rows = [
        f"{r.implementation:>16}  moves={r.moves:>7}  hwm={r.high_water_mark:>8}  "
        f"util={r.utilization:.3f}"
        for r in results
    ]
    print_report("Reshape workload: moves vs spread tradeoff", rows)
    by_name = {r.implementation: r for r in results}
    assert by_name["square-shell"].moves == 0
    assert by_name["hyperbolic"].moves == 0
    assert by_name["naive-row-major"].moves > 0
    # The tradeoff: naive is perfectly compact, PFs pay spread.
    assert by_name["naive-row-major"].utilization == 1.0
    assert by_name["hyperbolic"].high_water_mark > by_name["naive-row-major"].high_water_mark


def test_access_cost_after_growth(benchmark):
    """Reads/writes through the PF mapping after heavy reshaping (address
    computation is the per-access cost a PF array pays)."""
    arr = ExtendibleArray(SquareShellPairing(), 1, 1, fill=0)
    apply_workload(arr, tall_then_columns(64))
    rows, cols = arr.shape

    def touch_all():
        total = 0
        for x in range(1, rows + 1):
            for y in range(1, cols + 1):
                arr[x, y] = x + y
                total += arr[x, y]
        return total

    total = benchmark(touch_all)
    assert total > 0
