"""Ablations of the design choices DESIGN.md calls out.

1. **Step 2b order** -- the in-shell enumeration order does not change the
   spread on complete shells (it only permutes addresses within a shell),
   but it does change the address *locality* of a row walk; measured as the
   mean |address delta| between horizontally adjacent cells.
2. **Dovetail arity** -- spread overhead vs the number of dovetailed
   mappings (the m-factor in the bound, measured rather than bounded).
3. **Copy-index growth sweep** -- stride growth from constant kappa through
   linear, quadratic-exponent, and exponential kappa: the compactness
   valley the paper describes (too slow = exponential strides; too fast =
   superquadratic again).
4. **Fueter-Polya search** -- the full documented grid (59049 quadratics):
   the survivors are exactly the Cantor polynomial and its twin.
"""

from __future__ import annotations

from conftest import print_report
from repro.apf.constructor import ConstructedAPF
from repro.apf.families import (
    ConstantCopyIndex,
    ExponentialCopyIndex,
    HalfSquareCopyIndex,
    LinearCopyIndex,
    PowerCopyIndex,
)
from repro.core.aspectratio import AspectRatioPairing
from repro.core.dovetail import DovetailMapping
from repro.core.shells import ShellConstructedPairing, ShellOrder, SquareShells
from repro.core.squareshell import SquareShellPairing


def test_ablation_shell_order_locality(benchmark):
    """Same shells, different Step 2b order: spread identical on squares,
    locality (mean horizontal address jump) differs."""
    orders = [ShellOrder.NATIVE, ShellOrder.BY_COLUMNS, ShellOrder.BY_ROWS]

    def measure():
        out = []
        for order in orders:
            pf = ShellConstructedPairing(SquareShells(), order)
            spread = pf.spread_for_shape(12, 12)
            jumps = []
            for x in range(1, 13):
                prev = pf.pair(x, 1)
                for y in range(2, 13):
                    cur = pf.pair(x, y)
                    jumps.append(abs(cur - prev))
                    prev = cur
            out.append((order.value, spread, sum(jumps) / len(jumps)))
        return out

    results = benchmark(measure)
    rows = [
        f"order={name:<26} spread(12x12)={spread:>4}  mean |row-walk jump|={jump:7.2f}"
        for name, spread, jump in results
    ]
    print_report("Ablation 1: in-shell order (Step 2b)", rows)
    spreads = {spread for _name, spread, _jump in results}
    assert spreads == {144}  # order never changes the spread on squares
    jumps = [jump for _n, _s, jump in results]
    assert max(jumps) > min(jumps)  # but locality genuinely differs


def test_ablation_dovetail_arity(benchmark):
    """Spread overhead factor vs m: measured S(n) relative to the best
    component, for m = 1..4."""
    components = [
        AspectRatioPairing(1, 1),
        AspectRatioPairing(1, 2),
        AspectRatioPairing(2, 1),
        AspectRatioPairing(1, 3),
    ]
    n = 64

    def measure():
        out = []
        for m in range(1, 5):
            dt = DovetailMapping(components[:m])
            best = min(comp.spread(n) for comp in components[:m])
            out.append((m, dt.spread(n), best))
        return out

    results = benchmark(measure)
    rows = []
    for m, spread, best in results:
        rows.append(
            f"m={m}  S({n})={spread:>6}  best component={best:>6}  "
            f"overhead={spread / best:5.2f} (bound {m})"
        )
        assert spread <= m * best + (m - 1)
    print_report("Ablation 2: dovetail arity vs overhead", rows)


def test_ablation_copy_index_sweep(benchmark):
    """Stride at a fixed far row (x = 2**12) across the kappa menu: the
    compactness valley (exponential -> quadratic -> subquadratic ->
    superquadratic)."""
    menu = [
        ("kappa=0 (T^<1>)", ConstantCopyIndex(1)),
        ("kappa=2 (T^<3>)", ConstantCopyIndex(3)),
        ("kappa=g (T#)", LinearCopyIndex()),
        ("kappa=g^2 (T^[2])", PowerCopyIndex(2)),
        ("kappa=ceil(g^2/2) (T*)", HalfSquareCopyIndex()),
    ]
    x = 1 << 12

    def measure():
        return [(name, ConstructedAPF(ci).stride(x)) for name, ci in menu]

    results = benchmark(measure)
    # T^<1>'s stride at x = 4096 is 2**4097 -- format via bit length, not
    # float (which would overflow).
    rows = [
        f"{name:<24} S_x(x=4096) = 2^{stride.bit_length() - 1}"
        for name, stride in results
    ]
    print_report("Ablation 3: copy-index growth vs stride at x=4096", rows)
    by_name = dict(results)
    # The valley: T* < T# < T^<3> < T^<1>.
    assert by_name["kappa=ceil(g^2/2) (T*)"] < by_name["kappa=g (T#)"]
    assert by_name["kappa=g (T#)"] < by_name["kappa=2 (T^<3>)"]
    assert by_name["kappa=2 (T^<3>)"] < by_name["kappa=0 (T^<1>)"]

    # The "too fast" side of the valley is not visible at a fixed mid-group
    # x (kappa=2^g is temporarily *small* there); it shows at group heads,
    # where stride/x**2 keeps growing while T#'s never exceeds 2.
    from repro.apf.families import ExponentialKappaAPF

    bad = ExponentialKappaAPF()
    ratios = []
    for g in (4, 5, 6):
        head = bad.first_row_of_group(g)
        ratios.append(bad.stride(head) / (head * head))
    assert ratios == sorted(ratios) and ratios[-1] > 100


def test_fueter_polya_full_grid(benchmark):
    """Section 2, item 1 (Fueter-Polya), empirically: the full documented
    half-integer grid -- 9**5 = 59049 quadratics -- yields exactly the
    Cantor polynomial and its twin."""
    from repro.polynomial.fueter_polya import default_grid, search_quadratic_pfs

    result = benchmark.pedantic(
        lambda: search_quadratic_pfs(default_grid(4), bound=21),
        iterations=1,
        rounds=1,
    )
    print_report(
        "Ablation 4: Fueter-Polya grid search",
        [
            f"grid points: {result.grid_points}",
            f"stage-1 survivors: {result.stage1_survivors}",
            f"PFs found: {len(result.pfs_found)} (Cantor + twin: "
            f"{result.found_exactly_cantor_pair()})",
        ],
    )
    assert result.found_exactly_cantor_pair()


def test_ablation_square_shell_closed_form_vs_generic(benchmark):
    """Closed form vs generic shell machinery: same function, order of
    magnitude different cost (why the closed forms exist)."""
    closed = SquareShellPairing()
    generic = ShellConstructedPairing(SquareShells(), ShellOrder.NATIVE)
    window = [(x, y) for x in range(1, 33) for y in range(1, 33)]

    def closed_run():
        return sum(closed.pair(x, y) for x, y in window)

    total_closed = benchmark(closed_run)
    total_generic = sum(generic.pair(x, y) for x, y in window)
    assert total_closed == total_generic


def test_ablation_signature_radix(benchmark):
    """Radix-r generalization of APF-Constructor: the signature radix is a
    design axis the paper leaves at 2.  Measured: strides at matched rows
    for radix 2, 3, 5 under kappa(g) = g; radix 2 must agree exactly with
    the paper's constructor."""
    from repro.apf.constructor import ConstructedAPF
    from repro.apf.radix import RadixConstructedAPF

    def measure():
        paper = ConstructedAPF(LinearCopyIndex())
        out = {}
        for radix in (2, 3, 5):
            apf = RadixConstructedAPF(radix, LinearCopyIndex())
            apf.check_bijective_prefix(200)
            out[radix] = [apf.stride(x) for x in (1, 10, 100, 1000)]
        out["paper"] = [paper.stride(x) for x in (1, 10, 100, 1000)]
        return out

    results = benchmark(measure)
    rows = [
        f"radix {k!s:>5}: strides at x=1,10,100,1000 -> {v}"
        for k, v in results.items()
    ]
    print_report("Ablation 5: signature radix", rows)
    assert results[2] == results["paper"]
    # Strides are powers of the radix: coarser jumps at higher radix.
    assert all(s % 3 == 0 or s == 3 for s in results[3][1:])
