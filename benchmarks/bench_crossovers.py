"""Section 4.2's stride-growth comparisons and crossover points.

Paper claims measured here:

* ``T^<1>`` strides dominate ``T#``'s from x = 5 -- exact;
* ``T^<2>`` from x = 11 -- exact;
* ``T^<3>`` from x = 25 -- *measured: 33*; dominance holds on [25, 31] but
  fails at exactly x = 32, where ``T#``'s stride jumps at the power of two
  while ``T^<3>``'s group (size 4) hasn't advanced.  Recorded as a
  reproduction discrepancy in EXPERIMENTS.md.
* ``T*`` eventually beats ``T#`` dramatically (Section 4.2.3);
* ``kappa(g) = 2**g`` is superquadratic: S_x > x**2 log2(x**2) at group
  heads -- the paper's cautionary example.
"""

from __future__ import annotations

import math

from conftest import print_report
from repro.apf.analysis import dominance_crossover, growth_exponent, stride_table
from repro.apf.families import ExponentialKappaAPF, TBracket, TSharp, TStar


def test_bracket_vs_sharp_crossovers(benchmark):
    def measure():
        sharp = TSharp()
        return {
            c: dominance_crossover(TBracket(c), sharp, 500) for c in (1, 2, 3)
        }

    crossovers = benchmark(measure)
    rows = [
        f"T^<{c}> dominates T# from x = {x0}  (paper: {paper})"
        for (c, x0), paper in zip(crossovers.items(), (5, 11, 25))
    ]
    print_report("Stride-dominance crossovers (Sec 4.2.2)", rows)
    assert crossovers[1] == 5
    assert crossovers[2] == 11
    assert crossovers[3] == 33  # paper says 25; single violation at x=32

    # Pin the discrepancy precisely: on [25, 500] the only violation is 32.
    t3, sharp = TBracket(3), TSharp()
    violations = [x for x in range(25, 501) if t3.stride(x) < sharp.stride(x)]
    assert violations == [32]


def test_star_vs_sharp(benchmark):
    """T*'s subquadratic strides eventually crush T#'s quadratic ones."""

    def measure():
        star, sharp = TStar(), TSharp()
        x0 = dominance_crossover(sharp, star, 100_000)
        ratios = [
            (x, sharp.stride(x) / star.stride(x))
            for x in (100, 1000, 10_000, 100_000)
        ]
        return x0, ratios

    x0, ratios = benchmark(measure)
    rows = [f"x={x:>7}  S#(x)/S*(x) = {r:8.1f}" for x, r in ratios]
    rows.append(f"T# >= T* for all x >= {x0}")
    print_report("T* vs T# (Sec 4.2.3)", rows)
    assert x0 is not None
    assert ratios[-1][1] > 50  # "dramatically smaller"


def test_growth_exponents(benchmark):
    """Classify each family's stride growth by empirical log-log slope:
    exponential (T^<c>), quadratic (T#), subquadratic (T*)."""
    grid_small = [8, 16, 32, 64]
    grid_wide = [1 << k for k in (10, 16, 22, 28)]

    def measure():
        return {
            "T^<1>": growth_exponent(TBracket(1), grid_small),
            "T#": growth_exponent(TSharp(), grid_wide),
            "T*": growth_exponent(TStar(), grid_wide),
        }

    slopes = benchmark(measure)
    rows = [f"{name:>6}: slopes {['%.2f' % s for s in series]}" for name, series in slopes.items()]
    print_report("Stride growth exponents", rows)
    assert min(slopes["T^<1>"]) > 3  # exponential blows past any power
    assert all(abs(s - 2.0) < 0.05 for s in slopes["T#"])
    assert max(slopes["T*"][-2:]) < 1.7  # subquadratic tail


def test_exponential_kappa_is_superquadratic(benchmark):
    """The danger of excessively fast growing kappa (Sec 4.2.3 end)."""

    def measure():
        bad = ExponentialKappaAPF()
        rows = []
        for g in (4, 5, 6):  # the asymptotic relation kicks in at g = 4
            x = bad.first_row_of_group(g)
            rows.append((g, x, bad.stride(x)))
        return rows

    series = benchmark(measure)
    rows = []
    for g, x, stride in series:
        threshold = x * x * math.log2(x * x)
        rows.append(
            f"g={g}  first row x={x:>11}  S_x=2^{stride.bit_length() - 1}  "
            f"x^2 log x^2={threshold:.3e}"
        )
        assert stride > threshold
    print_report("kappa(g)=2^g: superquadratic strides at group heads", rows)


def test_stride_table_smoke(benchmark):
    """The raw stride table behind all comparisons (x = 1..64, 5 families)."""
    families = [TBracket(1), TBracket(2), TBracket(3), TSharp(), TStar()]
    xs = list(range(1, 65))
    table = benchmark(lambda: stride_table(families, xs))
    assert set(table) == {f.name for f in families}
    assert table["apf-sharp"][4] == 32  # S#_5 = 2^(1+2*2)
