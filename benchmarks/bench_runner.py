"""Perf-trajectory runner: re-measures the evaluation-speed and
spread-compactness scenarios and appends the results to a committed
``BENCH_eval.json`` so future changes can be checked for regressions.

This is the scriptable sibling of ``bench_eval_speed.py`` /
``bench_spread_compactness.py`` (which stay on pytest-benchmark): it runs
the same workload shapes without any pytest machinery, emits one JSON
*run record* per invocation, and -- in every mode -- re-verifies that the
vectorized kernels agree with the scalar bignum paths across the
exact-safe window boundary (2**53, 2**63).  A consistency failure makes
the process exit nonzero, so the smoke gate in the tier-1 suite catches
an inexact kernel before any perf number is believed.

Usage::

    PYTHONPATH=src python benchmarks/bench_runner.py            # full run
    PYTHONPATH=src python benchmarks/bench_runner.py --smoke    # tiny sizes
    PYTHONPATH=src python benchmarks/bench_runner.py --output /tmp/b.json

The output file holds a ``runs`` list (a trajectory, newest last); wall
times are machine-dependent, the *speedup ratios* and consistency flags
are the regression signal.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

import numpy as np

from repro.core.base import (
    EXACT_SAFE_ADDRESS_LIMIT,
    EXACT_SAFE_COORD_LIMIT,
    StorageMapping,
)
from repro.core.registry import get_pairing
from repro.perf.batch import pair_many, spread_many, unpair_many, vectorization_window

SCHEMA = "repro.bench-eval/1"
DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_eval.json"

EVAL_MAPPINGS = ["diagonal", "square-shell", "hyperbolic", "apf-sharp", "apf-bracket-3"]
BATCH_MAPPINGS = ["diagonal", "square-shell"]
#: Spread sweeps run on a mapping *without* a closed form (the cache's
#: incremental enumeration is the hot path) and one with (short-circuit).
SPREAD_MAPPINGS = ["aspect-2x3", "hyperbolic"]

#: Addresses straddling the exact-safe window: the float64 mantissa edge,
#: the int64 edge, and true bignums.
BOUNDARY_ADDRESSES = [
    1,
    2,
    EXACT_SAFE_ADDRESS_LIMIT - 1,
    EXACT_SAFE_ADDRESS_LIMIT,
    EXACT_SAFE_ADDRESS_LIMIT + 1,
    EXACT_SAFE_ADDRESS_LIMIT + 2,
    2**62,
    2**63 - 1,
    2**63,
    2**63 + 1,
    2**64 + 5,
    2**80 + 17,
]


def _best_seconds(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _geometric_grid(lo: int, hi: int, points: int) -> list[int]:
    ratio = (hi / lo) ** (1 / (points - 1))
    return [max(1, round(lo * ratio**i)) for i in range(points)]


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------


def scenario_eval_speed(smoke: bool, repeats: int) -> dict:
    """Scalar pair/unpair ns-per-op for every family (the Section 2-4
    'ease of computation' ranking, as numbers)."""
    window = 12 if smoke else 32
    n_addresses = 256 if smoke else 1024
    positions = [(x, y) for x in range(1, window + 1) for y in range(1, window + 1)]
    addresses = list(range(1, n_addresses + 1))
    out = {}
    for name in EVAL_MAPPINGS:
        pf = get_pairing(name)

        def run_pair():
            for x, y in positions:
                pf.pair(x, y)

        def run_unpair():
            for z in addresses:
                pf.unpair(z)

        pair_s = _best_seconds(run_pair, repeats)
        unpair_s = _best_seconds(run_unpair, repeats)
        out[name] = {
            "pair_ns_per_op": pair_s / len(positions) * 1e9,
            "unpair_ns_per_op": unpair_s / len(addresses) * 1e9,
        }
    return out


def scenario_batch_speed(smoke: bool, repeats: int) -> dict:
    """Vectorized batch kernels vs the scalar loop, inside the exact-safe
    window (the regression signal is the speedup ratio)."""
    size = 2048 if smoke else 65536
    out = {}
    for name in BATCH_MAPPINGS:
        pf = get_pairing(name)
        xs = np.arange(1, size + 1, dtype=np.int64)
        ys = xs[::-1].copy()
        zs = np.arange(1, size + 1, dtype=np.int64)

        vector_pair_s = _best_seconds(lambda: pair_many(pf, xs, ys), repeats)
        scalar_pair_s = _best_seconds(
            lambda: [pf.pair(int(x), int(y)) for x, y in zip(xs, ys)], repeats
        )
        vector_unpair_s = _best_seconds(lambda: unpair_many(pf, zs), repeats)
        scalar_unpair_s = _best_seconds(
            lambda: [pf.unpair(int(z)) for z in zs], repeats
        )
        out[name] = {
            "batch_size": size,
            "window": vectorization_window(pf),
            "pair_speedup": scalar_pair_s / vector_pair_s,
            "unpair_speedup": scalar_unpair_s / vector_unpair_s,
        }
    return out


def scenario_spread_compactness(smoke: bool, repeats: int) -> dict:
    """``spread_many`` over a geometric grid vs independent generic
    ``spread()`` calls: identical values, and the cache's speedup is the
    regression signal for mappings without a closed form."""
    points = 20 if smoke else 50
    hi = 400 if smoke else 2000
    grid = _geometric_grid(10, hi, points)
    out = {}
    for name in SPREAD_MAPPINGS:
        probe = get_pairing(name)
        generic = not probe.closed_form_spread

        def run_generic():
            # The un-cached baseline: the generic definition when the
            # mapping has no closed form, its own spread() otherwise.
            pf = get_pairing(name)
            if generic:
                return [StorageMapping.spread(pf, n) for n in grid]
            return [pf.spread(n) for n in grid]

        def run_cached():
            return spread_many(get_pairing(name), grid)

        baseline_s = _best_seconds(run_generic, repeats)
        cached_s = _best_seconds(run_cached, repeats)
        values = run_cached()
        if values != run_generic():
            raise AssertionError(f"{name}: spread_many disagrees with spread()")
        out[name] = {
            "grid_points": points,
            "grid_max": hi,
            "closed_form": not generic,
            "speedup": baseline_s / cached_s,
            "spread_at_max": values[-1],
            "utilization_at_max": grid[-1] / values[-1],
        }
    return out


#: Shard counts for the WBC shard-scaling scenario.
SHARD_COUNTS = [1, 4, 16]


def scenario_shard_scaling(smoke: bool, repeats: int) -> dict:
    """The sharded WBC service at 1 / 4 / 16 engine shards over one seeded
    workload, in both execution modes: serial (in-process engines) and
    parallel (``workers=min(shards, cpus)`` worker processes).  Each row
    records throughput (tasks completed per second of ``run()`` wall time;
    worker spawn/teardown is deliberately outside the timed region), the
    global-index footprint of the square-shell composition, and -- always
    -- zero attribution failures.  Two hard gates ride along, same
    contract as the kernel-consistency gate: a nonzero attribution-failure
    count raises, and a parallel row whose ``tasks_completed`` differs
    from its serial twin raises (the pool must be a bit-identical
    execution mode, not an approximation).  The recorded ``cpus`` lets
    downstream scaling gates arm only on machines with real parallelism.
    """
    import os

    from repro.apf.families import TSharp
    from repro.webcompute.simulation import SimulationConfig, WBCSimulation

    ticks = 40 if smoke else 200
    volunteers = 16 if smoke else 48
    cpus = os.cpu_count() or 1
    rows: dict[str, dict] = {}
    for shards in SHARD_COUNTS:
        for mode in ("serial", "parallel"):
            workers = None if mode == "serial" else min(shards, cpus)
            config = SimulationConfig(
                ticks=ticks,
                initial_volunteers=volunteers,
                seed=2002,
                departure_rate=0.01,
                shards=shards,
                workers=workers,
            )
            outcome = None
            wall_s = float("inf")
            for _ in range(repeats):
                sim = WBCSimulation(TSharp(), config)
                try:
                    t0 = time.perf_counter()
                    outcome = sim.run()
                    wall_s = min(wall_s, time.perf_counter() - t0)
                finally:
                    sim.close()
            if outcome.attribution_failures:
                raise AssertionError(
                    f"shards={shards} workers={workers}: "
                    f"{outcome.attribution_failures} attribution failures "
                    f"out of {outcome.attribution_checks} checks"
                )
            rows[f"{mode}_{shards}"] = {
                "shards": shards,
                "workers": workers,
                "ticks": ticks,
                "volunteers": outcome.volunteers_total,
                "tasks_completed": outcome.tasks_completed,
                "wall_s": wall_s,
                "tasks_per_second": outcome.tasks_completed / wall_s if wall_s else 0.0,
                "max_task_index": outcome.max_task_index,
                "max_task_index_bits": outcome.max_task_index.bit_length(),
                "attribution_checks": outcome.attribution_checks,
                "attribution_failures": outcome.attribution_failures,
            }
        serial, parallel = rows[f"serial_{shards}"], rows[f"parallel_{shards}"]
        if parallel["tasks_completed"] != serial["tasks_completed"]:
            raise AssertionError(
                f"shards={shards}: parallel mode completed "
                f"{parallel['tasks_completed']} tasks, serial "
                f"{serial['tasks_completed']} -- execution modes diverged"
            )
    return {"cpus": cpus, "rows": rows}


#: Shard counts for the fault-recovery scenario.
FAULT_SHARD_COUNTS = [1, 4, 16]
#: Volunteer counts for the recovery volunteer-scaling rows (at 4 shards).
FAULT_VOLUNTEER_COUNTS = [8, 16, 32]
FAULT_VOLUNTEER_COUNTS_SMOKE = [4, 8]


def _fault_recovery_row(shards: int, volunteers: int, ticks: int, repeats: int) -> dict:
    """One fault-recovery measurement: full-vs-incremental checkpoint
    bytes, crash+restore bounce latency, and the unique-index gate, for
    one (shards, volunteers) point of the seeded workload."""
    from repro.apf.families import TSharp
    from repro.webcompute.events import EventLog, ShardRestored
    from repro.webcompute.sharding import ShardedWBCServer
    from repro.webcompute.volunteer import VolunteerProfile

    server = ShardedWBCServer(
        TSharp(),
        shards=shards,
        verification_rate=0.2,
        seed=2002,
        lease_ticks=8,
        compact_every=None,  # manual checkpoint control below
    )
    log = EventLog.attach(server.bus, event_types=[ShardRestored])
    vids = server.register_round(
        [
            VolunteerProfile(f"v{i}", speed=1.0 + (i % 5) * 0.4)
            for i in range(volunteers)
        ]
    )
    issued: set[int] = set()

    def work(rounds):
        for _ in range(rounds):
            server.tick()
            for vid in vids:
                task = server.request_task(vid)
                issued.add(task.index)
                server.submit_result(vid, task.index, task.expected_result)

    def full_sweep():
        for shard in range(shards):
            server.checkpoint_shard(shard, full=True)

    work(ticks)
    checkpoint_s = _best_seconds(full_sweep, repeats)
    state_bytes = server._stores[0].base_bytes
    # One epoch of deltas on top of the fresh base: what a periodic
    # incremental checkpoint would persist instead of the full blob.
    work(1)
    server.checkpoint_shard(0)
    incremental_bytes = server._stores[0].segment_bytes[-1]
    # Pile post-checkpoint ops into the journal so the bounce has
    # real replay work, then time crash+restore (the journal is kept
    # across restores, so every repeat replays the same ops).
    work(ticks)

    def bounce():
        server.crash_shard(0)
        server.restore_shard(0)

    bounce_s = _best_seconds(bounce, repeats)
    replayed = log.of_type(ShardRestored)[-1].replayed_ops
    before = len(issued)
    work(2)
    if len(issued) != before + 2 * len(vids):
        raise AssertionError(
            f"shards={shards}: duplicate task index issued after restore "
            f"({len(issued)} unique, expected {before + 2 * len(vids)})"
        )
    return {
        "shards": shards,
        "volunteers": volunteers,
        "ticks": ticks,
        "checkpoint_all_s": checkpoint_s,
        "state_bytes_per_shard": state_bytes,
        "incremental_bytes_per_shard": incremental_bytes,
        "incremental_fraction": incremental_bytes / state_bytes,
        "bounce_s": bounce_s,
        "replayed_ops": replayed,
        "tasks_issued": len(issued),
        "unique_after_restore": True,
    }


def scenario_fault_recovery(smoke: bool, repeats: int) -> dict:
    """Crash tolerance as numbers: the cost of a full checkpoint sweep,
    the bytes one shard persists full vs incremental (one epoch of delta
    over a fresh base), and the latency of a crash+restore bounce
    (checkpoint load + journal replay) -- at 1 / 4 / 16 shards, plus a
    volunteer-scaling sweep at 4 shards (``volunteers_N`` rows) showing
    how both checkpoint sizes and the bounce grow with seated state.
    The correctness gate rides along: after the bounce the service must
    keep issuing globally unique task indices, or the scenario raises
    (same contract as the kernel-consistency gate).

    Full mode runs enough ticks that per-shard task history dwarfs the
    fixed-size serialization floor, so ``incremental_fraction`` measures
    the protocol on a long-lived shard, not the floor.  (That floor
    used to be dominated by the ledger's ~8 KB Mersenne rng state
    riding in every delta; the counter-based verification RNG shrinks
    the rng entry to three scalars, so deltas are now pure payload.)"""
    ticks = 6 if smoke else 240
    volunteers = 8 if smoke else 32
    out = {}
    for shards in FAULT_SHARD_COUNTS:
        out[f"shards_{shards}"] = _fault_recovery_row(
            shards, volunteers, ticks, repeats
        )
    scaling = (
        FAULT_VOLUNTEER_COUNTS_SMOKE if smoke else FAULT_VOLUNTEER_COUNTS
    )
    for count in scaling:
        out[f"volunteers_{count}"] = _fault_recovery_row(
            4, count, ticks, repeats
        )
    return out


#: Codecs raced by the shootout: the paper's square-shell baseline, the
#: two classic shell-walkers, and the ratio-16 binary-proportional
#: composer (arXiv:1809.06876) tuned for the few-shards/many-tasks shape.
CODEC_SHOOTOUT = ["square-shell", "rosenberg-strong", "szudzik", "binprop-16"]
#: Shard count the shootout runs at (the widest point of shard_scaling).
CODEC_SHOOTOUT_SHARDS = 16


def scenario_codec_shootout(smoke: bool, repeats: int) -> dict:
    """The pluggable-codec race: one seeded 16-shard WBC workload per
    registered composer, plus composer micro-costs.  Because volunteer
    behaviour never reads the index *value*, every codec must complete the
    identical task trace -- the only thing allowed to move is the global
    index footprint, which is the whole point of swapping composers.

    Per codec the row records throughput, the minted ``max_task_index``
    and its bit width, raw composer encode/decode ns-per-op over the
    shard-composition shape (row = shard+1, so a 16-shard service
    exercises rows 1..16 with unbounded columns), and the closed-form
    ``spread_for_shape(shards, locals)`` footprint as the analytic twin
    of the measured width.  Three hard gates ride along (same contract
    as the kernel-consistency gate): any attribution failure raises,
    a codec whose ``tasks_completed`` differs from the square-shell
    baseline raises (behaviour must be codec-independent), and a
    binprop-16 index width above square-shell's raises -- the ratio
    composer exists to shrink the footprint, so regressing it is a bug.
    """
    from repro.apf.families import TSharp
    from repro.webcompute.codecs import composer_for
    from repro.webcompute.simulation import SimulationConfig, WBCSimulation

    ticks = 30 if smoke else 160
    volunteers = 12 if smoke else 40
    micro = 64 if smoke else 1024
    shards = CODEC_SHOOTOUT_SHARDS
    positions = [
        (shard + 1, local)
        for shard in range(shards)
        for local in range(1, micro // shards + 1)
    ]
    rows: dict[str, dict] = {}
    for codec in CODEC_SHOOTOUT:
        config = SimulationConfig(
            ticks=ticks,
            initial_volunteers=volunteers,
            seed=2002,
            departure_rate=0.01,
            shards=shards,
            codec=codec,
        )
        outcome = None
        wall_s = float("inf")
        for _ in range(repeats):
            sim = WBCSimulation(TSharp(), config)
            try:
                t0 = time.perf_counter()
                outcome = sim.run()
                wall_s = min(wall_s, time.perf_counter() - t0)
            finally:
                sim.close()
        if outcome.attribution_failures:
            raise AssertionError(
                f"codec={codec}: {outcome.attribution_failures} attribution "
                f"failures out of {outcome.attribution_checks} checks"
            )
        composer = composer_for(codec)
        addresses = [composer.pair(x, y) for x, y in positions]
        encode_s = _best_seconds(
            lambda: [composer.pair(x, y) for x, y in positions], repeats
        )
        decode_s = _best_seconds(
            lambda: [composer.unpair(z) for z in addresses], repeats
        )
        rows[codec] = {
            "ticks": ticks,
            "volunteers": outcome.volunteers_total,
            "tasks_completed": outcome.tasks_completed,
            "wall_s": wall_s,
            "tasks_per_second": outcome.tasks_completed / wall_s if wall_s else 0.0,
            "max_task_index": outcome.max_task_index,
            "max_task_index_bits": outcome.max_task_index.bit_length(),
            "attribution_checks": outcome.attribution_checks,
            "attribution_failures": outcome.attribution_failures,
            "encode_ns_per_op": encode_s / len(positions) * 1e9,
            "decode_ns_per_op": decode_s / len(addresses) * 1e9,
            "spread_shape_bits": composer.spread_for_shape(
                shards, micro // shards
            ).bit_length(),
        }
    baseline = rows["square-shell"]
    for codec, row in rows.items():
        if row["tasks_completed"] != baseline["tasks_completed"]:
            raise AssertionError(
                f"codec={codec}: completed {row['tasks_completed']} tasks, "
                f"square-shell baseline {baseline['tasks_completed']} -- "
                "behaviour must be codec-independent"
            )
    if rows["binprop-16"]["max_task_index_bits"] > baseline["max_task_index_bits"]:
        raise AssertionError(
            f"binprop-16 minted {rows['binprop-16']['max_task_index_bits']}-bit "
            f"indices, square-shell {baseline['max_task_index_bits']}-bit -- "
            "the ratio composer must not widen the footprint"
        )
    return {"shards": shards, "rows": rows}


def scenario_staticcheck(smoke: bool, repeats: int) -> dict:
    """reprolint over the library tree: cold (no cache), warm (full
    cache hits, which must reproduce the cold findings exactly), and
    two one-edit incremental runs on a scratch copy of the tree that
    measure the v4 summary-delta planner directly against both of its
    ancestors.  A comment-only edit changes no function structure hash,
    so exactly the edited file re-analyzes (v2 re-analyzed its whole
    reverse-import closure); a semantic body edit to ``get_pairing``
    (the registry entry point half the tree calls) inserts a statement
    without changing the function's dataflow summary, so the v4 planner
    re-analyzes only the edited file while ``v3_closure_files`` records
    what the v3 reverse call-graph closure would have re-run and
    ``skipped_by_summary`` counts the consumers the old/new fixpoint
    comparison proved unaffected.  An unsuppressed
    finding is a gate failure here, same contract as the
    kernel-consistency gate -- perf numbers from a tree that violates
    its own invariants are not worth recording."""
    import shutil
    import tempfile

    from repro.staticcheck import analyze_paths
    from repro.staticcheck.cache import (
        CACHE_FILENAME,
        AnalysisCache,
        config_hash,
        dirty_closure,
    )
    from repro.staticcheck.config import load_config

    src = _ROOT / "src"
    config, _config_path = load_config(src)
    timing_repeats = 1 if smoke else repeats

    # Cold, uncached: the pure analysis cost of the full tree.
    cold_results: list = []
    cold_s = _best_seconds(
        lambda: cold_results.append(analyze_paths([src], config=config)),
        timing_repeats,
    )
    result = cold_results[-1]
    if not result.ok:
        raise AssertionError(
            "reprolint found unsuppressed violations:\n"
            + "\n".join(f.render() for f in result.findings)
        )

    with tempfile.TemporaryDirectory() as scratch_dir:
        scratch = Path(scratch_dir)
        # Warm: populate a scratch cache once, then time pure-hit runs.
        cache_path = scratch / CACHE_FILENAME
        analyze_paths([src], config=config, cache=True, cache_path=cache_path)
        warm_results: list = []
        warm_s = _best_seconds(
            lambda: warm_results.append(
                analyze_paths([src], config=config, cache=True, cache_path=cache_path)
            ),
            timing_repeats,
        )
        warm = warm_results[-1]
        if [f.render() for f in warm.findings] != [
            f.render() for f in result.findings
        ]:
            raise AssertionError("cached findings diverge from the cold run")
        # Incremental: edit files in a scratch copy of the tree and
        # count how much re-analyzes under per-function planning, next
        # to the reverse-import closure v2 would have re-run.
        tree = scratch / "src"
        shutil.copytree(src, tree, ignore=shutil.ignore_patterns("__pycache__"))
        edit_cache = scratch / ("edit-" + CACHE_FILENAME)
        analyze_paths([tree], config=config, cache=True, cache_path=edit_cache)

        def v2_closure(target: Path, module: str) -> int:
            cached = AnalysisCache.load(edit_cache, config_hash(config, None))
            clean = {
                path: (entry.module, entry.imports)
                for path, entry in cached.entries.items()
                if path != str(target)
            }
            return 1 + len(dirty_closure({module}, clean))

        # Edit 1: comment-only.  No function structure hash moves, so
        # only the edited file itself re-analyzes.
        target = tree / "repro" / "webcompute" / "frontend.py"
        comment_v2 = v2_closure(target, "repro.webcompute.frontend")
        target.write_text(target.read_text() + "\n# bench: one-line edit\n")
        incremental = analyze_paths(
            [tree], config=config, cache=True, cache_path=edit_cache
        )

        # Edit 2: semantic body edit to get_pairing, the registry entry
        # point half the tree calls -- the reverse call-graph closure
        # re-analyzes its true callers and nothing else.
        target2 = tree / "repro" / "core" / "registry.py"
        semantic_v2 = v2_closure(target2, "repro.core.registry")
        target2.write_text(
            target2.read_text().replace(
                'def get_pairing(name: str) -> StorageMapping:\n',
                'def get_pairing(name: str) -> StorageMapping:\n'
                "    _ = name  # bench: semantic body edit\n",
                1,
            )
        )
        semantic = analyze_paths(
            [tree], config=config, cache=True, cache_path=edit_cache
        )

    # Waiver census: every `# reprolint: allow[...]` the tree leans on,
    # by rule and by module.  A waiver added to silence a finding shows
    # up in the committed trajectory, so the escape-hatch count is
    # reviewed history, not invisible drift.
    by_module: dict[str, int] = {}
    for finding, _line in result.suppressed:
        by_module[finding.module] = by_module.get(finding.module, 0) + 1

    stats = incremental.cache_stats
    semantic_stats = semantic.cache_stats
    return {
        "files": result.files,
        "analyze_s": cold_s,
        "files_per_second": result.files / cold_s if cold_s > 0 else 0.0,
        "warm_s": warm_s,
        "warm_speedup": cold_s / warm_s if warm_s > 0 else 0.0,
        "warm_hit_rate": warm.cache_stats.hit_rate,
        "incremental_reanalyzed": stats.misses,
        "incremental_fraction": stats.misses / incremental.files,
        "incremental_edits": {
            "comment_edit": {
                "reanalyzed": stats.misses,
                "changed_functions": stats.changed_functions,
                "invalidated_functions": stats.invalidated_functions,
                "skipped_by_summary": stats.skipped_by_summary,
                "v2_closure_files": comment_v2,
                "v3_closure_files": stats.closure_files,
            },
            "semantic_edit": {
                "reanalyzed": semantic_stats.misses,
                "changed_functions": semantic_stats.changed_functions,
                "invalidated_functions": semantic_stats.invalidated_functions,
                "skipped_by_summary": semantic_stats.skipped_by_summary,
                "v2_closure_files": semantic_v2,
                "v3_closure_files": semantic_stats.closure_files,
            },
        },
        "unsuppressed_findings": len(result.findings),
        "waivers": {
            "total": len(result.suppressed),
            "by_rule": result.suppressed_counts_by_rule(),
            "by_module": dict(sorted(by_module.items())),
        },
        "pass": True,
    }


def scenario_consistency() -> dict:
    """The exactness gate: vectorized paths must agree with the scalar
    bignum paths across the exact-safe boundary.  Raises on mismatch."""
    checked = 0
    for name in BATCH_MAPPINGS:
        pf = get_pairing(name)
        xs, ys = unpair_many(pf, BOUNDARY_ADDRESSES)
        for z, x, y in zip(BOUNDARY_ADDRESSES, xs.reshape(-1), ys.reshape(-1)):
            sx, sy = pf.unpair(z)
            if (int(x), int(y)) != (sx, sy):
                raise AssertionError(
                    f"{name}: unpair_many({z}) = ({x}, {y}), scalar says ({sx}, {sy})"
                )
            if pf.pair(sx, sy) != z:
                raise AssertionError(f"{name}: roundtrip broke at {z}")
            checked += 1
        coords = [1, 2, 1000, EXACT_SAFE_COORD_LIMIT, EXACT_SAFE_COORD_LIMIT + 1, 2**40]
        got = pair_many(pf, coords, coords[::-1])
        for x, y, z in zip(coords, coords[::-1], got.reshape(-1)):
            if int(z) != pf.pair(x, y):
                raise AssertionError(
                    f"{name}: pair_many({x}, {y}) = {z}, scalar says {pf.pair(x, y)}"
                )
            checked += 1
    return {"checked": checked, "pass": True}


# ----------------------------------------------------------------------
# Trajectory file
# ----------------------------------------------------------------------


def load_trajectory(path: Path) -> dict:
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError:
            data = None
        if isinstance(data, dict) and data.get("schema") == SCHEMA:
            if isinstance(data.get("runs"), list):
                return data
    return {"schema": SCHEMA, "runs": []}


def build_run(smoke: bool, repeats: int) -> dict:
    return {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "scenarios": {
            "consistency": scenario_consistency(),
            "eval_speed": scenario_eval_speed(smoke, repeats),
            "batch_speed": scenario_batch_speed(smoke, repeats),
            "spread_compactness": scenario_spread_compactness(smoke, repeats),
            "shard_scaling": scenario_shard_scaling(smoke, repeats),
            "codec_shootout": scenario_codec_shootout(smoke, repeats),
            "fault_recovery": scenario_fault_recovery(smoke, repeats),
            "staticcheck": scenario_staticcheck(smoke, repeats),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes: validates schema + kernel consistency in ~a second",
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of timing repeats")
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="trajectory JSON path"
    )
    args = parser.parse_args(argv)

    try:
        run = build_run(args.smoke, max(1, args.repeats))
    except AssertionError as exc:
        print(f"CONSISTENCY FAILURE: {exc}", file=sys.stderr)
        return 1

    trajectory = load_trajectory(args.output)
    trajectory["runs"].append(run)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(trajectory, indent=2) + "\n")

    batch = run["scenarios"]["batch_speed"]
    spread = run["scenarios"]["spread_compactness"]
    print(f"mode={run['mode']}  runs-in-file={len(trajectory['runs'])}  -> {args.output}")
    for name, row in batch.items():
        print(
            f"  {name}: pair x{row['pair_speedup']:.1f}, "
            f"unpair x{row['unpair_speedup']:.1f} (batch {row['batch_size']})"
        )
    for name, row in spread.items():
        print(f"  spread {name}: x{row['speedup']:.1f} over {row['grid_points']} points")
    scaling = run["scenarios"]["shard_scaling"]
    for name, row in scaling["rows"].items():
        mode = "serial" if row["workers"] is None else f"{row['workers']} workers"
        print(
            f"  wbc shards={row['shards']} ({mode}): "
            f"{row['tasks_per_second']:.0f} tasks/s, "
            f"max index {row['max_task_index_bits']} bits, "
            f"{row['attribution_failures']} attribution failures"
        )
    shootout = run["scenarios"]["codec_shootout"]
    for name, row in shootout["rows"].items():
        print(
            f"  codec {name} @ {shootout['shards']} shards: "
            f"{row['tasks_completed']} tasks, "
            f"max index {row['max_task_index_bits']} bits, "
            f"encode {row['encode_ns_per_op']:.0f} ns, "
            f"decode {row['decode_ns_per_op']:.0f} ns, "
            f"{row['attribution_failures']} attribution failures"
        )
    for row in run["scenarios"]["fault_recovery"].values():
        print(
            f"  recovery shards={row['shards']} volunteers={row['volunteers']}: "
            f"checkpoint {row['checkpoint_all_s'] * 1e3:.1f} ms, "
            f"bounce {row['bounce_s'] * 1e3:.1f} ms ({row['replayed_ops']} ops replayed), "
            f"{row['state_bytes_per_shard']} B full / "
            f"{row['incremental_bytes_per_shard']} B delta "
            f"({row['incremental_fraction']:.0%})"
        )
    lint = run["scenarios"]["staticcheck"]
    print(
        f"  staticcheck: {lint['files']} files clean in {lint['analyze_s'] * 1e3:.0f} ms cold, "
        f"{lint['warm_s'] * 1e3:.0f} ms warm (x{lint['warm_speedup']:.0f}); one-file edit "
        f"re-analyzes {lint['incremental_reanalyzed']} "
        f"({lint['waivers']['total']} waivers)"
    )
    print(f"  consistency: {run['scenarios']['consistency']['checked']} checks ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
