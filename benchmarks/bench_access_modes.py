"""The Section 3 Aside's access-cost axis: by position, by row/column, by
block -- measured across mappings.

Also measures the additive-traversal payoff ([16] via Section 4): walking
an APF-stored row costs one contract lookup plus integer stepping, vs one
pairing evaluation per cell for shell PFs.
"""

from __future__ import annotations

from conftest import print_report
from repro.apf.families import TSharp
from repro.arrays.extendible import ExtendibleArray
from repro.arrays.views import block_view, col_view, row_view, traversal_cost
from repro.core.diagonal import DiagonalPairing
from repro.core.locality import block_span, col_jump_profile, row_jump_profile
from repro.core.hyperbolic import HyperbolicPairing
from repro.core.squareshell import SquareShellPairing

SIZE = 64


def _filled(mapping):
    arr = ExtendibleArray(mapping, SIZE, SIZE, fill=0)
    for x in range(1, SIZE + 1):
        arr[x, x] = x
    return arr


def test_row_walk_apf(benchmark):
    arr = _filled(TSharp())

    def walk():
        total = 0
        for x in range(1, SIZE + 1):
            for cell in row_view(arr, x):
                total += cell.address
        return total

    assert benchmark(walk) > 0
    assert traversal_cost(arr, "all") == SIZE  # one eval per row


def test_row_walk_square_shell(benchmark):
    arr = _filled(SquareShellPairing())

    def walk():
        total = 0
        for x in range(1, SIZE + 1):
            for cell in row_view(arr, x):
                total += cell.address
        return total

    assert benchmark(walk) > 0
    assert traversal_cost(arr, "all") == SIZE * SIZE


def test_col_walk(benchmark):
    arr = _filled(SquareShellPairing())

    def walk():
        total = 0
        for y in range(1, SIZE + 1):
            for cell in col_view(arr, y):
                total += cell.address
        return total

    assert benchmark(walk) > 0


def test_block_walk(benchmark):
    arr = _filled(DiagonalPairing())

    def walk():
        total = 0
        for x0 in range(1, SIZE - 6, 8):
            for cell in block_view(arr, x0, x0, 8, 8):
                total += cell.address
        return total

    assert benchmark(walk) > 0


def test_locality_table(benchmark):
    """The summary table: row/col jump profiles + corner-block density per
    mapping (the qualitative 'varying computational costs' made numeric)."""
    mappings = [
        DiagonalPairing(),
        SquareShellPairing(),
        HyperbolicPairing(),
        TSharp(),
    ]

    def measure():
        out = []
        for m in mappings:
            row = row_jump_profile(m, 4, 24)
            col = col_jump_profile(m, 4, 24)
            _lo, _hi, density = block_span(m, 1, 1, 8)
            out.append((m.name, row, col, density))
        return out

    results = benchmark(measure)
    rows = []
    for name, row, col, density in results:
        rows.append(
            f"{name:>14}  row jumps: mean={row.mean:9.1f} const={row.constant!s:>5}  "
            f"col jumps: mean={col.mean:9.1f}  8x8 corner density={density:.3f}"
        )
    print_report("Access locality by mapping", rows)
    by_name = {name: (row, col, density) for name, row, col, density in results}
    # APF rows are perfectly regular; square-shell corner blocks are dense.
    assert by_name["apf-sharp"][0].constant
    assert by_name["square-shell"][2] == 1.0
    assert not by_name["diagonal"][0].constant
