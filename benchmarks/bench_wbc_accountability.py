"""Section 4's application: accountable web computing, measured.

Reported series (asserted on shape, per the reproduction contract):

* **accountability** -- every returned result attributes to its true
  producer (0 failures); with full verification every bad result is
  caught and persistent offenders are banned; honest volunteers never are;
* **compactness** -- the same seeded project run over each APF family:
  ``max_task_index`` (the task-memory footprint) is astronomically larger
  under the exponential ``T^<1>`` than under quadratic ``T#``/``T*`` --
  who-wins matches Section 4.2's stride analysis;
* **throughput** -- simulation cost itself.
"""

from __future__ import annotations

from conftest import print_report
from repro.apf.families import TBracket, TSharp, TStar
from repro.webcompute.simulation import (
    SimulationConfig,
    WBCSimulation,
    run_family_comparison,
)

BASE = dict(ticks=250, initial_volunteers=30, seed=2002)


def test_family_footprint_comparison(benchmark):
    config = SimulationConfig(**BASE)
    families = [TBracket(1), TBracket(3), TSharp(), TStar()]

    outcomes = benchmark(lambda: run_family_comparison(families, config))

    rows = [
        f"{o.apf_name:>15}  tasks={o.tasks_completed:>6}  "
        f"max_index={o.max_task_index:>14}  density={o.density:.3e}"
        for o in outcomes
    ]
    print_report("WBC footprint by APF family (same seeded workload)", rows)

    by_name = {o.apf_name: o for o in outcomes}
    # Same workload across rows:
    assert len({o.tasks_completed for o in outcomes}) == 1
    # Who wins: exponential family's footprint dwarfs the quadratic ones.
    assert (
        by_name["apf-bracket-1"].max_task_index
        > 1000 * by_name["apf-sharp"].max_task_index
    )
    # T^<3> better than T^<1> by orders of magnitude as well.
    assert (
        by_name["apf-bracket-1"].max_task_index
        > 1000 * by_name["apf-bracket-3"].max_task_index
    )


def test_accountability_invariants(benchmark):
    config = SimulationConfig(
        ticks=300,
        initial_volunteers=25,
        malicious_fraction=0.25,
        careless_fraction=0.1,
        verification_rate=1.0,
        ban_after_strikes=2,
        seed=7,
        departure_rate=0.005,
        arrival_rate=0.1,
    )

    outcome = benchmark(lambda: WBCSimulation(TSharp(), config).run())

    rows = [
        f"tasks completed        {outcome.tasks_completed}",
        f"bad results returned   {outcome.bad_results_returned}",
        f"bad results caught     {outcome.bad_results_caught}",
        f"faulty banned          {outcome.faulty_banned}",
        f"honest banned          {outcome.honest_banned}",
        f"attribution failures   {outcome.attribution_failures}",
    ]
    print_report("Accountability under full verification", rows)

    assert outcome.attribution_failures == 0
    assert outcome.honest_banned == 0
    assert outcome.bad_results_caught == outcome.bad_results_returned
    assert outcome.faulty_banned >= 2


def test_sampled_verification_tradeoff(benchmark):
    """Catch rate vs verification rate: the lightweight-scheme knob."""
    rates = [0.05, 0.2, 1.0]

    def sweep():
        out = []
        for rate in rates:
            config = SimulationConfig(
                ticks=200,
                initial_volunteers=20,
                malicious_fraction=0.25,
                careless_fraction=0.0,
                verification_rate=rate,
                ban_after_strikes=2,
                seed=17,
                departure_rate=0.0,
                arrival_rate=0.0,
            )
            outcome = WBCSimulation(TSharp(), config).run()
            out.append((rate, outcome))
        return out

    series = benchmark(sweep)
    rows = []
    for rate, o in series:
        caught = o.bad_results_caught / max(1, o.bad_results_returned)
        rows.append(
            f"verify={rate:>4}  bad={o.bad_results_returned:>4}  "
            f"caught={caught:5.1%}  banned={o.faulty_banned}"
        )
    print_report("Verification rate vs catch rate", rows)
    # More verification catches (weakly) more and bans at least as many.
    catch = [o.bad_results_caught for _r, o in series]
    assert catch[0] <= catch[-1]
    assert series[-1][1].bad_results_caught == series[-1][1].bad_results_returned


def test_simulation_throughput(benchmark):
    """Raw simulation speed (tasks simulated per run)."""
    config = SimulationConfig(ticks=150, initial_volunteers=40, seed=3)
    outcome = benchmark(lambda: WBCSimulation(TStar(), config).run())
    assert outcome.tasks_completed > 1000


def test_detection_latency_vs_verification_rate(benchmark):
    """Forensics: how fast are persistent offenders detected, and how much
    pollution/exposure accumulates first, as the verification rate varies."""
    from repro.webcompute.metrics import compute_metrics

    rates = [0.1, 0.3, 1.0]

    def sweep():
        out = []
        for rate in rates:
            config = SimulationConfig(
                ticks=250,
                initial_volunteers=20,
                malicious_fraction=0.25,
                careless_fraction=0.0,
                verification_rate=rate,
                ban_after_strikes=2,
                seed=23,
                departure_rate=0.0,
                arrival_rate=0.0,
            )
            sim = WBCSimulation(TSharp(), config)
            sim.run()
            out.append((rate, compute_metrics(sim.server)))
        return out

    series = benchmark(sweep)
    rows = []
    for rate, m in series:
        latency = (
            f"{m.mean_detection_latency:6.1f}" if m.mean_detection_latency else "   n/a"
        )
        rows.append(
            f"verify={rate:>4}  coverage={m.ban_coverage:6.1%}  "
            f"latency={latency} ticks  pollution={m.total_pollution:>4}  "
            f"exposure={m.total_exposure:>5}"
        )
    print_report("Detection latency vs verification rate", rows)
    # More verification -> (weakly) better coverage and lower latency.
    coverages = [m.ban_coverage for _r, m in series]
    assert coverages[-1] == 1.0
    assert coverages == sorted(coverages)
    latencies = [m.mean_detection_latency for _r, m in series if m.mean_detection_latency]
    assert latencies[-1] <= latencies[0]
