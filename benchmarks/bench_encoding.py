"""Godel-encoding benchmarks (the Section 1.2 extension).

Measured:

* tuple codec throughput (encode + decode) and the *code growth* per
  element -- iterated pairing roughly squares per level under a quadratic
  base PF, so code bit-length doubles per element (asserted);
* string codec throughput over consecutive integers (enumerating all
  strings) and long-text round-trips;
* base-PF sensitivity: diagonal vs square-shell base for the tuple codec
  (same asymptotics, different constants).
"""

from __future__ import annotations

from conftest import print_report
from repro.core.diagonal import DiagonalPairing
from repro.encoding import StringCodec, TupleCodec


def test_tuple_codec_roundtrip_throughput(benchmark):
    codec = TupleCodec()
    tuples = [tuple(range(1, k + 1)) for k in range(0, 7)] * 50

    def run():
        total = 0
        for t in tuples:
            total += len(codec.decode(codec.encode(t)))
        return total

    total = benchmark(run)
    assert total == sum(len(t) for t in tuples)


def test_tuple_code_growth(benchmark):
    """Bit-length of the code vs tuple length: ~doubling per element under
    the square-shell base (each level squares the payload)."""
    codec = TupleCodec()

    def measure():
        return [
            (k, codec.encode(tuple([5] * k)).bit_length()) for k in range(1, 9)
        ]

    series = benchmark(measure)
    rows = [f"len={k}  code bits={bits}" for k, bits in series]
    print_report("Tuple-code growth (square-shell base)", rows)
    bits = [b for _k, b in series]
    # Geometric growth: each extra element roughly doubles the bit count.
    for a, b in zip(bits[2:], bits[3:]):
        assert 1.5 < b / a < 2.5


def test_string_codec_enumeration(benchmark):
    """Decoding 1..N enumerates all strings in length-then-lex order."""
    codec = StringCodec("ab")

    def run():
        return [codec.decode(z) for z in range(1, 4001)]

    strings = benchmark(run)
    assert len(set(strings)) == 4000
    lengths = [len(s) for s in strings]
    assert lengths == sorted(lengths)  # shortlex enumeration


def test_string_long_text_roundtrip(benchmark):
    codec = StringCodec()
    text = "pairingfunctions" * 40  # 640 characters

    def run():
        return codec.decode(codec.encode(text))

    assert benchmark(run) == text


def test_base_pf_sensitivity(benchmark):
    """Same tuples, two base PFs: identical decodes, different code sizes
    (the diagonal base is denser for skewed tuples)."""
    square = TupleCodec()
    diagonal = TupleCodec(DiagonalPairing())
    tuples = [(1, 50), (50, 1), (7, 7, 7), (2, 3, 4, 5)]

    def run():
        out = []
        for t in tuples:
            cs, cd = square.encode(t), diagonal.encode(t)
            assert square.decode(cs) == diagonal.decode(cd) == t
            out.append((t, cs.bit_length(), cd.bit_length()))
        return out

    series = benchmark(run)
    rows = [
        f"{str(t):>14}  square-shell bits={bs:>3}  diagonal bits={bd:>3}"
        for t, bs, bd in series
    ]
    print_report("Tuple codec: base-PF sensitivity", rows)
    assert any(bs != bd for _t, bs, bd in series)
