"""Higher-dimensional extension benchmarks (Section 1's "by iteration" and
Section 3's "extending this work to higher dimensionalities is immediate").

Measured:

* iterated pair/unpair cost vs dimension (the per-level composition cost);
* zero-move reshaping of 3-D and 4-D extendible arrays under mixed axis
  grow/shrink workloads;
* the compactness cost of iteration: axis order matters because inner
  codes feed outer PFs quadratically.
"""

from __future__ import annotations

from itertools import product

from conftest import print_report
from repro.arrays.ndarray import ExtendibleNdArray
from repro.core.diagonal import DiagonalPairing
from repro.core.ndim import IteratedPairing
from repro.core.squareshell import SquareShellPairing


def test_pair_cost_vs_dimension(benchmark):
    """Encode a fixed batch of points at d = 2..5: cost is ~linear in d."""
    mappings = {d: IteratedPairing(d, SquareShellPairing()) for d in (2, 3, 4, 5)}

    def run():
        total = 0
        for d, mapping in mappings.items():
            for point in product(range(1, 6), repeat=d):
                total += mapping.pair(point)
        return total

    assert benchmark(run) > 0


def test_unpair_cost_vs_dimension(benchmark):
    mappings = {d: IteratedPairing(d, SquareShellPairing()) for d in (2, 3, 4, 5)}

    def run():
        acc = 0
        for mapping in mappings.values():
            for z in range(1, 2001):
                acc += sum(mapping.unpair(z))
        return acc

    assert benchmark(run) > 0


def test_3d_zero_move_reshaping(benchmark):
    """A 3-D array under a 90-step axis grow/shrink script: zero moves."""

    def run():
        arr = ExtendibleNdArray(
            IteratedPairing(3, SquareShellPairing()), (2, 2, 2), fill=0
        )
        arr[1, 1, 1] = "anchor"
        script = [(0, "g"), (1, "g"), (2, "g")] * 20 + [
            (0, "s"), (1, "s"), (2, "s")
        ] * 10
        for axis, op in script:
            if op == "g":
                arr.grow(axis)
            else:
                arr.shrink(axis)
        return arr

    arr = benchmark(run)
    assert arr[1, 1, 1] == "anchor"
    assert arr.space.traffic.moves == 0
    print_report(
        "3-D extendible array",
        [
            f"final shape {arr.shape}, moves = {arr.space.traffic.moves}, "
            f"high-water = {arr.space.high_water_mark}"
        ],
    )


def test_iteration_compactness_cost(benchmark):
    """The iteration's spread on a k^3 cube vs the 2-D baseline on k^2:
    inner codes grow quadratically, so a cube costs ~k^4 addresses even
    with the square-shell base -- the price of dimensional iteration."""

    def measure():
        out = []
        for k in (3, 4, 5, 6):
            p3 = IteratedPairing(3, SquareShellPairing())
            spread = p3.spread_for_shape((k, k, k))
            out.append((k, spread, k**3))
        return out

    series = benchmark(measure)
    rows = []
    for k, spread, cells in series:
        rows.append(
            f"k={k}  cells={cells:>4}  spread={spread:>6}  ratio={spread / cells:7.1f}"
        )
        assert spread >= k**4
    print_report("Iteration compactness cost on cubes", rows)


def test_axis_order_matters(benchmark):
    """Ablation: a 2 x 2 x 32 box under (square-shell, square-shell) vs the
    transposed box -- the long axis is far cheaper innermost than
    outermost? Measured, not assumed."""

    def measure():
        p3 = IteratedPairing(3, SquareShellPairing())
        long_inner = p3.spread_for_shape((2, 2, 32))
        long_outer = p3.spread_for_shape((32, 2, 2))
        return long_inner, long_outer

    long_inner, long_outer = benchmark(measure)
    print_report(
        "Axis-order ablation (2x2x32 vs 32x2x2)",
        [f"long axis innermost: {long_inner}", f"long axis outermost: {long_outer}"],
    )
    assert long_inner != long_outer  # the choice is real


def test_mixed_base_iteration(benchmark):
    """Heterogeneous levels (square-shell over diagonal) stay bijective and
    cost the sum of their levels."""
    p = IteratedPairing(4, [SquareShellPairing(), DiagonalPairing(), SquareShellPairing()])

    def run():
        for z in range(1, 1501):
            point = p.unpair(z)
            assert p.pair(point) == z
        return True

    assert benchmark(run)
