"""Section 3.2's compactness claims, measured as a spread sweep.

Paper claims reproduced here:

* ``D`` spreads the n x n array over ~2n**2 addresses and the 1 x n array
  over (n**2+n)/2;
* ``A_{1,1}`` manages storage perfectly on squares (S = cell count);
* the dovetail of m PFs is within m * min + (m-1) of the best component;
* ``S_H(n) = Theta(n log n)``, matching the lattice lower bound exactly
  (ratio 1.0) -- no PF can do better by more than a constant factor.
"""

from __future__ import annotations

from conftest import print_report
from repro.core.aspectratio import AspectRatioPairing
from repro.core.diagonal import DiagonalPairing
from repro.core.dovetail import DovetailMapping
from repro.core.hyperbolic import HyperbolicPairing
from repro.core.spread import compare_spreads, spread_curve
from repro.core.squareshell import SquareShellPairing
from repro.numbertheory.lattice import spread_lower_bound

NS = [2**k for k in range(4, 13)]


def test_spread_sweep_all_pfs(benchmark):
    """The headline table: S(n) for D, A11, H over n = 16..4096 against
    the Theta(n log n) lower bound."""
    mappings = [DiagonalPairing(), SquareShellPairing(), HyperbolicPairing()]

    curves = benchmark(lambda: compare_spreads(mappings, NS))

    rows = [f"{'n':>6} {'D':>10} {'A11':>10} {'H':>9} {'bound':>9}"]
    for i, n in enumerate(NS):
        d = curves["diagonal"].points[i].spread
        a = curves["square-shell"].points[i].spread
        h = curves["hyperbolic"].points[i].spread
        b = spread_lower_bound(n)
        rows.append(f"{n:>6} {d:>10} {a:>10} {h:>9} {b:>9}")
        # Closed-form claims:
        assert d == n * (n + 1) // 2
        assert a == n * n
        assert h == b  # optimal, ratio exactly 1
    print_report("Spread S(n): who wins at storing arbitrary shapes", rows)

    # Shape claims from the text:
    d = DiagonalPairing()
    for n in (10, 100):
        assert d.spread_for_shape(n, n) == 2 * n * n - 2 * n + 1  # ~2n^2
        assert d.spread_for_shape(1, n) == n * (n + 1) // 2  # > n^2/2


def test_square_shell_perfection_on_squares(benchmark):
    """(3.2) with a = b = 1: perfect storage for every square size."""
    a11 = SquareShellPairing()

    def measure():
        return [a11.spread_for_shape(k, k) for k in range(1, 64)]

    spreads = benchmark(measure)
    assert spreads == [k * k for k in range(1, 64)]


def test_aspect_ratio_perfection(benchmark):
    """(3.2) generally: A_{a,b} is perfect on its favored shapes."""
    cases = [(1, 2), (2, 3), (3, 1)]

    def measure():
        out = []
        for a, b in cases:
            p = AspectRatioPairing(a, b)
            out.append([p.spread_for_shape(a * k, b * k) for k in range(1, 12)])
        return out

    results = benchmark(measure)
    for (a, b), series in zip(cases, results):
        assert series == [a * b * k * k for k in range(1, 12)]


def test_dovetail_bound(benchmark):
    """Section 3.2.2: dovetailed spread <= m * min + (m - 1), measured for
    m = 2 and m = 3 over a grid of n."""
    dt2 = DovetailMapping([AspectRatioPairing(1, 2), AspectRatioPairing(2, 1)])
    dt3 = DovetailMapping(
        [SquareShellPairing(), AspectRatioPairing(1, 3), AspectRatioPairing(3, 1)]
    )
    ns = [8, 32, 128]

    def measure():
        return {
            "m=2": [(n, dt2.spread(n), dt2.spread_bound(n)) for n in ns],
            "m=3": [(n, dt3.spread(n), dt3.spread_bound(n)) for n in ns],
        }

    results = benchmark(measure)
    rows = []
    for label, series in results.items():
        for n, measured, bound in series:
            rows.append(f"{label}  n={n:>4}  S={measured:>6}  bound={bound:>6}")
            assert measured <= bound
    print_report("Dovetail spread vs m*min bound", rows)


def test_hyperbolic_optimality_ratio(benchmark):
    """S_H(n) / lower_bound(n) == 1.0 for every n -- the 'no PF can beat
    this by more than a constant factor' claim with constant exactly 1."""
    h = HyperbolicPairing()

    def measure():
        return [(n, h.spread(n), spread_lower_bound(n)) for n in NS]

    series = benchmark(measure)
    for n, s, bound in series:
        assert s == bound
