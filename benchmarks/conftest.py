"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures (or measured
claims), *asserts* the regenerated content, and reports it via
``print_report`` so a ``pytest benchmarks/ --benchmark-only -s`` run shows
the same rows/series the paper prints.  Timing comes from pytest-benchmark.
"""

from __future__ import annotations


def print_report(title: str, lines: list[str]) -> None:
    """Emit a labeled report block (visible with -s; harmless without)."""
    print()
    print(f"=== {title} ===")
    for line in lines:
        print(line)
