"""Figure 5: the aggregate positions of all arrays with <= n cells -- the
lattice staircase under xy = n, and the Theta(n log n) count behind the
hyperbolic PF's optimality."""

from __future__ import annotations

import math

from conftest import print_report
from repro.numbertheory.lattice import (
    count_lattice_points_under_hyperbola,
    hyperbola_staircase,
    lattice_points_under_hyperbola,
)
from repro.render.figures import figure5, figure5_data

PAPER_STAIRCASE_16 = [16, 8, 5, 4, 3, 2, 2, 2, 1, 1, 1, 1, 1, 1, 1, 1]


def test_figure5_staircase(benchmark):
    data = benchmark(figure5_data)
    assert data == PAPER_STAIRCASE_16
    assert sum(data) == 50
    print_report("Figure 5 (lattice under xy = 16)", figure5().splitlines())


def test_figure5_enumeration(benchmark):
    points = benchmark(lambda: list(lattice_points_under_hyperbola(16)))
    assert len(points) == 50
    assert (1, 16) in points and (16, 1) in points and (4, 4) in points
    assert (4, 5) not in points


def test_figure5_count_scales_nlogn(benchmark):
    """The counting series the optimality argument needs: D(n) for n over
    six decades, each within 10% of n(ln n + 2 gamma - 1)."""
    ns = [10**k for k in range(1, 7)]

    def counts():
        return [count_lattice_points_under_hyperbola(n) for n in ns]

    values = benchmark(counts)
    gamma = 0.5772156649015329
    rows = []
    for n, v in zip(ns, values):
        estimate = n * (math.log(n) + 2 * gamma - 1)
        rows.append(f"n={n:>8}  D(n)={v:>10}  n(ln n + 2g - 1)={estimate:>14.0f}")
        if n >= 100:
            assert abs(v - estimate) / estimate < 0.10
    print_report("Figure 5 series: lattice count vs n log n", rows)
