"""Figure 6: sample values of T^<1>, T^<3>, T#, T* at the paper's rows --
every printed value asserted -- plus the registration-vs-allocation cost
split the APF design optimizes for."""

from __future__ import annotations

from conftest import print_report
from repro.apf.families import TBracket, TSharp, TStar
from repro.render.figures import figure6, figure6_data

PAPER_FIG6 = {
    "T^<1>": [
        (14, 13, [8192, 24576, 40960, 57344, 73728]),
        (15, 14, [16384, 49152, 81920, 114688, 147456]),
    ],
    "T^<3>": [
        (14, 3, [24, 88, 152, 216, 280]),
        (15, 3, [40, 104, 168, 232, 296]),
        (28, 6, [448, 960, 1472, 1984, 2496]),
        (29, 7, [128, 1152, 2176, 3200, 4224]),
    ],
    "T^#": [
        (28, 4, [400, 912, 1424, 1936, 2448]),
        (29, 4, [432, 944, 1456, 1968, 2480]),
    ],
    "T^*": [
        (28, 3, [328, 840, 1352, 1864, 2376]),
        (29, 3, [344, 856, 1368, 1880, 2392]),
    ],
}


def test_figure6_table(benchmark):
    data = benchmark(figure6_data)
    assert data == PAPER_FIG6
    print_report("Figure 6 (APF samples)", figure6().splitlines())


def test_figure6_registration_cost(benchmark):
    """Registration-time work: computing (B_x, S_x) for 1000 rows of each
    family (the once-per-volunteer cost)."""
    families = [TBracket(1), TBracket(3), TSharp(), TStar()]

    def register_all():
        return [
            (apf.base(x), apf.stride(x))
            for apf in families
            for x in range(1, 1001)
        ]

    contracts = benchmark(register_all)
    assert len(contracts) == 4000
    assert all(b < s for b, s in contracts)  # relation (4.2)


def test_figure6_allocation_cost(benchmark):
    """Post-registration allocation is one add per task: 10**5 tasks
    across cached contracts."""
    sharp = TSharp()
    contracts = [(sharp.base(x), sharp.stride(x)) for x in range(1, 101)]

    def allocate():
        out = 0
        for base, stride in contracts:
            for t in range(1000):
                out = base + t * stride
        return out

    last = benchmark(allocate)
    assert last == contracts[-1][0] + 999 * contracts[-1][1]
