"""Ablation: accountability (the paper's scheme) vs majority-vote
replication (the heavyweight classical alternative).

Section 4 sells the PF ledger as "computationally lightweight".  This
bench quantifies the claim on a shared volunteer population:

* replication r=3 performs exactly 3 computations per decided task and
  filters minority faults per-task;
* the ledger performs 1 computation + a sampled verification per task and
  instead *bans* offenders, so its bad-acceptance rate decays as the run
  progresses while its work overhead stays near 1.

Also swept: replication factor vs acceptance error, and the cubic-search
companion to the Fueter-Polya ablation (Section 2, item 3: no cubic PF).
"""

from __future__ import annotations

from conftest import print_report
from repro.apf.families import TSharp
from repro.webcompute.replication import ReplicationSimulation
from repro.webcompute.simulation import SimulationConfig, WBCSimulation
from repro.webcompute.volunteer import Behavior, VolunteerProfile


def mixed_pool(honest: int, malicious: int, error_rate: float):
    pool = [VolunteerProfile(f"h{i}", speed=1.0) for i in range(honest)]
    pool += [
        VolunteerProfile(f"m{i}", behavior=Behavior.MALICIOUS, error_rate=error_rate)
        for i in range(malicious)
    ]
    return pool


def test_replication_vs_ledger_economics(benchmark):
    pool = mixed_pool(honest=16, malicious=4, error_rate=0.5)

    def run_both():
        replication = ReplicationSimulation(pool, replication_factor=3, seed=11).run(
            tasks=1500
        )
        config = SimulationConfig(
            ticks=300,
            initial_volunteers=20,
            malicious_fraction=0.2,
            careless_fraction=0.0,
            malicious_error_rate=0.5,
            verification_rate=0.2,
            ban_after_strikes=2,
            seed=11,
            departure_rate=0.0,
            arrival_rate=0.0,
        )
        ledger = WBCSimulation(TSharp(), config).run()
        return replication, ledger

    replication, ledger = benchmark(run_both)

    ledger_overhead = 1 + 0.2  # one computation + sampled verification
    rows = [
        f"replication r=3 : {replication.work_overhead:.2f} computations/task, "
        f"{replication.acceptance_error_rate:.2%} bad accepted",
        f"ledger          : {ledger_overhead:.2f} computations/task, "
        f"{ledger.bad_results_returned - ledger.bad_results_caught} bad slipped "
        f"of {ledger.tasks_completed} tasks, {ledger.faulty_banned} offenders banned",
    ]
    print_report("Accountability vs replication", rows)

    assert replication.work_overhead >= 3.0
    assert ledger_overhead < replication.work_overhead
    assert ledger.faulty_banned >= 2  # replication never bans anyone
    # Replication's strength: per-task filtering of minority faults
    # (random corruptions almost never agree, so with reissue the bad
    # acceptance rate is near zero).
    assert replication.acceptance_error_rate < 0.01


def test_replication_factor_sweep(benchmark):
    """Acceptance error vs r on a heavily faulty population."""
    pool = mixed_pool(honest=6, malicious=6, error_rate=0.9)

    def sweep():
        out = []
        for r in (1, 3, 5):
            outcome = ReplicationSimulation(pool, replication_factor=r, seed=7).run(
                tasks=600
            )
            out.append(outcome)
        return out

    outcomes = benchmark(sweep)
    rows = [
        f"r={o.replication_factor}  work/task={o.work_overhead:.1f}  "
        f"bad accepted={o.acceptance_error_rate:.2%}"
        for o in outcomes
    ]
    print_report("Replication factor sweep (50% malicious pool)", rows)
    # More replicas, (weakly) fewer accepted errors; r=1 accepts plenty.
    errors = [o.acceptance_error_rate for o in outcomes]
    assert errors[0] > 0.1
    assert errors[2] <= errors[0]


def test_no_cubic_pf_sweep(benchmark):
    """Section 2, item 3: the 250k-candidate cubic sweep confirms that no
    cubic on the documented grid is a pairing function."""
    from repro.polynomial.cubic_search import search_cubic_pfs

    result = benchmark.pedantic(search_cubic_pfs, iterations=1, rounds=1)
    print_report(
        "No-cubic-PF sweep",
        [
            f"candidates: {result.candidates}",
            f"stage-1 survivors: {result.stage1_survivors}",
            f"PF-consistent survivors: {len(result.pf_consistent)} "
            f"(theorem confirmed: {result.confirms_theorem})",
        ],
    )
    assert result.candidates == 250_000
    assert result.confirms_theorem