"""The "ease of computation" axis (Sections 2-4): time per pair/unpair for
every family.

The paper ranks its constructions qualitatively -- the Cauchy-Cantor
polynomials are "computationally simplest", ``T^<c>`` "stresses computation
ease", ``T*`` pays "greater computational complexity", and the hyperbolic
PF's optimal compactness costs divisor arithmetic.  These benchmarks make
the ranking quantitative: ns/op for pair and unpair over a fixed workload.

Expected shape (asserted where it is robust): polynomial PFs (diagonal,
square-shell) are the fastest; the hyperbolic PF's unpair is the most
expensive by a wide margin.
"""

from __future__ import annotations

import pytest

from repro.core.registry import get_pairing

PAIR_NAMES = [
    "diagonal",
    "square-shell",
    "aspect-1x2",
    "hyperbolic",
    "apf-bracket-1",
    "apf-bracket-3",
    "apf-sharp",
    "apf-star",
]

# A fixed batch of positions; modest coordinates so the exponential APFs
# don't turn this into a bignum benchmark.
POSITIONS = [(x, y) for x in range(1, 33) for y in range(1, 33)]


@pytest.mark.parametrize("name", PAIR_NAMES)
def test_pair_speed(benchmark, name):
    pf = get_pairing(name)

    def run():
        total = 0
        for x, y in POSITIONS:
            total += pf.pair(x, y)
        return total

    total = benchmark(run)
    assert total > 0


@pytest.mark.parametrize("name", PAIR_NAMES)
def test_unpair_speed(benchmark, name):
    pf = get_pairing(name)
    addresses = list(range(1, 1025))

    def run():
        acc = 0
        for z in addresses:
            x, y = pf.unpair(z)
            acc += x + y
        return acc

    acc = benchmark(run)
    assert acc > 0


def test_vectorized_vs_scalar_diagonal(benchmark):
    """The HPC idiom: the numpy batch path must beat the scalar loop by a
    wide margin on a 4096-element batch (asserted >= 5x)."""
    import numpy as np
    import time

    d = get_pairing("diagonal")
    xs = np.arange(1, 4097, dtype=np.int64)
    ys = xs[::-1].copy()

    def vectorized():
        return d.pair_array(xs, ys)

    result = benchmark(vectorized)
    assert int(result[0]) == d.pair(1, 4096)

    # One-shot scalar-vs-vector sanity ratio (not the benchmark itself).
    t0 = time.perf_counter()
    [d.pair(int(x), int(y)) for x, y in zip(xs, ys)]
    scalar_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    d.pair_array(xs, ys)
    vector_s = time.perf_counter() - t0
    assert vector_s * 5 < scalar_s
