"""The Section 3 Aside ([14]): hashing schemes for extendible arrays with
fewer than 2n memory locations and O(1) expected access.

Measured: capacity/cell stays < 2 across three decades of n; mean probes
per access stay bounded (do not grow with n); throughput of bulk loads and
random access.
"""

from __future__ import annotations

import random

from conftest import print_report
from repro.arrays.hashed import HashedArrayStore


def load_store(n: int, seed: int = 0) -> HashedArrayStore:
    rng = random.Random(seed)
    store = HashedArrayStore()
    while len(store) < n:
        store.put(rng.randint(1, 10**6), rng.randint(1, 10**6), len(store))
    return store


def test_space_bound_across_scales(benchmark):
    def measure():
        out = []
        for n in (100, 1000, 10_000):
            store = load_store(n)
            out.append((n, store.capacity, store.capacity / len(store)))
        return out

    series = benchmark(measure)
    rows = []
    for n, capacity, ratio in series:
        rows.append(f"n={n:>6}  slots={capacity:>6}  slots/cell={ratio:.3f}")
        assert ratio < 2.0  # the [14] bound
    print_report("Hash store: < 2n memory locations", rows)


def test_expected_probes_constant(benchmark):
    """Mean probes per read must not grow with n -- the O(1) expected-time
    claim."""
    stores = {n: load_store(n, seed=1) for n in (1000, 10_000, 50_000)}
    rng = random.Random(2)
    queries = [(rng.randint(1, 10**6), rng.randint(1, 10**6)) for _ in range(4000)]

    def measure():
        out = {}
        for n, store in stores.items():
            before_ops = store.stats.operations
            before_probes = store.stats.probes
            for x, y in queries:
                store.get(x, y)
            ops = store.stats.operations - before_ops
            probes = store.stats.probes - before_probes
            out[n] = probes / ops
        return out

    means = benchmark(measure)
    rows = [f"n={n:>6}  mean probes/read = {m:.3f}" for n, m in means.items()]
    print_report("Hash store: O(1) expected access", rows)
    assert means[50_000] < means[1000] + 1.5  # flat, not growing with n


def test_bulk_insert_throughput(benchmark):
    def build():
        return load_store(5000, seed=3)

    store = benchmark(build)
    assert len(store) == 5000
    assert store.capacity < 2 * 5000


def test_random_access_throughput(benchmark):
    store = load_store(20_000, seed=4)
    keys = list(store.items())[:2000]

    def read_all():
        total = 0
        for (x, y), _v in keys:
            total += store.get(x, y)
        return total

    benchmark(read_all)


def test_delete_heavy_workload(benchmark):
    """Churn: insert/delete cycles must preserve both bounds."""

    def churn():
        rng = random.Random(5)
        store = HashedArrayStore()
        live = []
        for i in range(8000):
            if live and rng.random() < 0.45:
                x, y = live.pop(rng.randrange(len(live)))
                store.delete(x, y)
            else:
                x, y = rng.randint(1, 10**5), rng.randint(1, 10**5)
                store.put(x, y, i)
                live.append((x, y))
        return store

    store = benchmark(churn)
    assert store.stats.mean_probes < 8.0
